"""A simulated server: cores + scheduler + NIC + sockets.

Each µSuite microservice (mid-tier, each leaf shard) runs on its own
:class:`Machine`, mirroring the paper's "each microservice runs on
dedicated hardware" methodology (§V).
"""

from __future__ import annotations

from typing import Dict, Generator, Optional

from repro.kernel.config import MachineSpec
from repro.kernel.ops import KernelOp
from repro.kernel.scheduler import PlacementPolicy, Scheduler, WakeAffinityPlacement
from repro.kernel.sockets import Epoll, Eventfd, KSocket
from repro.kernel.threads import SimThread
from repro.net.fabric import Fabric, Packet
from repro.sim.core import Simulation
from repro.sim.rng import RngStreams, lognormal_from_median_sigma
from repro.telemetry import Telemetry
from repro.telemetry.critpath import riders

#: Period of the background RCU bookkeeping tick, in microseconds.
RCU_TICK_US = 4000.0
#: Allocation model: one ``brk`` per this many allocation ticks...
BRK_EVERY = 64
#: ...and an ``mmap``+``munmap`` pair per this many.
MMAP_EVERY = 256


class Machine:
    """One simulated server attached to the fabric."""

    def __init__(
        self,
        sim: Simulation,
        fabric: Fabric,
        telemetry: Telemetry,
        rng: RngStreams,
        spec: MachineSpec,
        name: Optional[str] = None,
        policy: Optional[PlacementPolicy] = None,
    ):
        self.sim = sim
        self.fabric = fabric
        self.telemetry = telemetry
        self.spec = spec
        self.name = name or spec.name
        self.rng = rng.spawn(f"machine:{self.name}")
        self.scheduler = Scheduler(
            sim=sim,
            machine=self,
            n_cores=spec.cores,
            costs=spec.costs,
            policy=policy or WakeAffinityPlacement(),
        )
        self._sockets: Dict[int, KSocket] = {}
        # Optional repro.faults.LeafFaultInjector installed by the cluster
        # when this machine hosts a faulted leaf; None on the default path.
        self.fault_injector = None
        self._irq_rng = self.rng.py("irq")
        self._alloc_ticks = 0
        self._rcu_timer = sim.call_in(RCU_TICK_US, self._rcu_tick)
        self._shutdown = False
        fabric.register(self.name, self.deliver)

    # -- resources ---------------------------------------------------------
    def socket(self, port: int) -> KSocket:
        """Create and bind a socket on ``port`` (openat-accounted)."""
        if port in self._sockets:
            raise ValueError(f"port {port} already bound on {self.name}")
        sock = KSocket(self, port)
        self._sockets[port] = sock
        self.count_syscall("openat")
        return sock

    def epoll(self) -> Epoll:
        """Create an epoll instance."""
        self.count_syscall("openat")
        return Epoll(self)

    def eventfd(self) -> Eventfd:
        """Create an eventfd."""
        self.count_syscall("openat")
        return Eventfd(self)

    def spawn(self, name: str, body: Generator[KernelOp, object, object]) -> SimThread:
        """Start a simulated thread on this machine."""
        thread = SimThread(f"{self.name}/{name}", body)
        return self.scheduler.spawn(thread)

    def count_syscall(self, syscall: str) -> None:
        """Account a syscall made by userspace setup code on this machine."""
        self.telemetry.count_syscall(self.name, syscall)

    def alloc_tick(self) -> None:
        """Allocator model: occasional brk/mmap/munmap traffic per request."""
        self._alloc_ticks += 1
        if self._alloc_ticks % BRK_EVERY == 0:
            self.count_syscall("brk")
        if self._alloc_ticks % MMAP_EVERY == 0:
            self.count_syscall("mmap")
            self.count_syscall("munmap")

    def shutdown(self) -> None:
        """Stop background ticks (lets a bounded simulation drain)."""
        self._shutdown = True
        if self._rcu_timer is not None:
            self._rcu_timer.cancel()
            self._rcu_timer = None

    # -- network ------------------------------------------------------------
    def transmit(self, sock: KSocket, dst, payload, size_bytes: int, tx_latency: float) -> None:
        """Called by the scheduler's sendmsg handler: hand off to the NIC."""
        if hasattr(payload, "on_wire"):
            payload.on_wire(self.sim.now)
        self.fabric.send(sock.address, tuple(dst), payload, size_bytes, extra_delay_us=tx_latency)

    def deliver(self, packet: Packet) -> None:
        """Fabric arrival: run the hardirq → NET_RX softirq pipeline."""
        costs = self.spec.costs
        irq_core = self.scheduler.least_busy_irq_core(self.spec.nic_irq_cores)
        hardirq = lognormal_from_median_sigma(
            self._irq_rng, costs.hardirq_median_us, costs.hardirq_sigma
        )
        softirq = lognormal_from_median_sigma(
            self._irq_rng, costs.softirq_net_rx_median_us, costs.softirq_net_rx_sigma
        )
        self.telemetry.record_irq(self.name, "hardirq", hardirq)
        self.telemetry.record_irq(self.name, "net_rx", softirq)
        carried = riders(packet.payload)
        if carried:
            now = self.sim.now
            for trace, rid in carried:
                trace.add_segment("hardirq", self.name, now, now + hardirq, rid)
                trace.add_segment(
                    "net_rx", self.name, now + hardirq, now + hardirq + softirq, rid
                )
            self.telemetry.record_attributed(self.name, "hardirq", hardirq)
            self.telemetry.record_attributed(self.name, "net_rx", softirq)
        # Interrupt handling steals cycles from whatever runs on that core.
        self.scheduler.steal_cpu(irq_core, hardirq + softirq)
        self.sim.defer_in(hardirq + softirq, self._socket_deliver, packet)

    def _socket_deliver(self, packet: Packet) -> None:
        sock = self._sockets.get(packet.dst[1])
        if sock is None:
            return  # port closed; drop silently like a RST-less UDP stack
        if hasattr(packet.payload, "delivered"):
            packet.payload.delivered(self.sim.now)
        # The softirq core writes the rx-queue head; a later recvmsg from a
        # poller core takes the cacheline back (HITM both directions).
        irq_core = self.scheduler.least_busy_irq_core(self.spec.nic_irq_cores)
        previous = sock.cacheline.last_core
        if previous is not None and previous != irq_core:
            remote = self.spec.socket_of(previous) != self.spec.socket_of(irq_core)
            self.telemetry.count_hitm(self.name, remote=remote)
        sock.cacheline.last_core = irq_core
        carried = riders(packet.payload)
        if carried:
            now = self.sim.now
            wire_time = getattr(packet.payload, "wire_time", None)
            for trace, rid in carried:
                start = wire_time if wire_time is not None else trace.started_us
                trace.add_segment("net", self.name, start, now, rid)
            # Threads woken synchronously by this delivery (epoll wake-all)
            # owe their upcoming runqueue wait to these traced requests.
            scheduler = self.scheduler
            scheduler._pending_wake_riders = carried
            try:
                sock.deliver(packet.payload)
            finally:
                scheduler._pending_wake_riders = None
        else:
            sock.deliver(packet.payload)

    def _rcu_tick(self) -> None:
        if self._shutdown:
            return
        costs = self.spec.costs
        for core in self.scheduler.cores:
            # Active = dispatched since the last tick, or still running now
            # (a long compute never re-dispatches but keeps the core busy).
            if core.busy_since_tick or core.current is not None:
                core.busy_since_tick = False
                latency = lognormal_from_median_sigma(
                    self._irq_rng, costs.softirq_rcu_median_us, costs.softirq_rcu_sigma
                )
                self.telemetry.record_irq(self.name, "rcu", latency)
        self._rcu_timer = self.sim.call_in(RCU_TICK_US, self._rcu_tick)

    def __repr__(self) -> str:
        return f"Machine({self.name}, {self.spec.cores} cores)"
