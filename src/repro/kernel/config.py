"""Machine specification and OS cost models.

All constants are in microseconds unless noted.  Defaults are calibrated
against the paper and its citations (DESIGN.md §5):

* context switch 5 µs — the paper cites a 5–20 µs cost [Tsafrir 2007];
* futex / epoll / sendmsg / recvmsg syscall costs in the 1–3 µs range;
* C-state exit latencies from ~1 µs (C1) to ~90 µs (deep package states),
  chosen to reproduce the paper's observation that median latency at
  100 QPS exceeds the median at 1 000 QPS (Fig. 10);
* Table II's testbed: Intel Gold 6148 "Skylake", 40 cores / 80 HW threads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class CStatePoint:
    """One row of the idle-governor table.

    A core idle for at least ``min_idle_us`` (and less than the next row's
    threshold) is assumed to have entered the state and pays
    ``exit_latency_us`` when woken.
    """

    min_idle_us: float
    exit_latency_us: float
    name: str


# Modeled after Skylake server C-states (C1 / C1E / C6) as exposed by the
# Linux menu governor.  Exit latencies follow intel_idle's tables.
DEFAULT_CSTATES: Tuple[CStatePoint, ...] = (
    CStatePoint(0.0, 1.0, "C1"),
    CStatePoint(20.0, 10.0, "C1E"),
    CStatePoint(600.0, 85.0, "C6"),
)


@dataclass(frozen=True)
class OsCosts:
    """Latency cost model for kernel operations (all in microseconds)."""

    # Thread and scheduler costs.
    context_switch_us: float = 5.0
    timeslice_us: float = 4000.0
    wakeup_ipi_us: float = 0.8
    runq_dispatch_us: float = 0.5
    # Extra latency multiplier applied while a run queue holds waiting
    # threads; models scheduler bookkeeping growing with queue depth.
    runq_per_waiter_us: float = 0.3

    # Syscall entry/exit plus handler costs, by syscall name.
    syscall_us: Tuple[Tuple[str, float], ...] = (
        ("futex", 1.8),
        ("epoll_pwait", 2.2),
        ("sendmsg", 3.0),
        ("recvmsg", 2.6),
        ("read", 1.2),
        ("write", 1.4),
        ("clone", 30.0),
        ("mmap", 4.0),
        ("munmap", 4.0),
        ("mprotect", 3.0),
        ("brk", 1.5),
        ("openat", 4.0),
        ("close", 1.6),
        ("nanosleep", 2.0),
        ("sched_yield", 1.0),
    )

    # Interrupt handler cost models: (median_us, lognormal sigma).
    hardirq_median_us: float = 1.6
    hardirq_sigma: float = 0.45
    softirq_net_rx_median_us: float = 4.0
    softirq_net_rx_sigma: float = 0.55
    softirq_net_tx_median_us: float = 2.2
    softirq_net_tx_sigma: float = 0.5
    softirq_sched_median_us: float = 1.2
    softirq_sched_sigma: float = 0.5
    softirq_rcu_median_us: float = 0.9
    softirq_rcu_sigma: float = 0.4
    softirq_block_median_us: float = 0.8
    softirq_block_sigma: float = 0.4

    # Userspace atomic-op cost for uncontended mutex fast paths.
    atomic_op_us: float = 0.05
    # Extra cost when the lock cacheline was last owned by another core
    # (a HITM transfer); dirtier still when the owner sat on the other
    # socket (QPI/UPI hop).
    hitm_transfer_us: float = 0.25
    hitm_remote_transfer_us: float = 0.75

    cstates: Tuple[CStatePoint, ...] = DEFAULT_CSTATES

    # DVFS model: idle cores drop toward the minimum frequency factor and
    # ramp back up while busy.  Together with C-state exits this is why
    # the paper measures *higher median latency at 100 QPS than at
    # 1 000 QPS* (Fig. 10) — cold cores run application compute slower.
    dvfs_enabled: bool = True
    dvfs_min_factor: float = 0.62
    dvfs_ramp_us: float = 1000.0  # busy-time constant toward full clock
    dvfs_decay_us: float = 4000.0  # idle-time constant toward min clock

    def syscall_cost(self, name: str) -> float:
        """Cost of syscall ``name``; raises KeyError for unknown syscalls."""
        for known, cost in self.syscall_us:
            if known == name:
                return cost
        raise KeyError(f"unknown syscall: {name}")

    def cstate_exit_latency(self, idle_us: float) -> Tuple[float, str]:
        """Exit latency and state name for a core that idled ``idle_us``."""
        chosen = self.cstates[0]
        for point in self.cstates:
            if idle_us >= point.min_idle_us:
                chosen = point
        return chosen.exit_latency_us, chosen.name


@dataclass(frozen=True)
class MachineSpec:
    """Hardware description of one simulated server (paper Table II)."""

    name: str = "skylake"
    cores: int = 80  # logical cores: 40 physical / 80 HW threads
    clock_ghz: float = 2.4
    dram_gb: int = 64
    nic_gbps: float = 10.0
    # Cores eligible to take NIC interrupts (RSS spreading).
    nic_irq_cores: int = 8
    # NUMA sockets (the paper's testbed is a 2-socket Gold 6148 box);
    # cores split contiguously across sockets.
    sockets: int = 2
    costs: OsCosts = field(default_factory=OsCosts)

    def socket_of(self, core_index: int) -> int:
        """The NUMA socket a core belongs to."""
        if not 0 <= core_index < self.cores:
            raise ValueError(f"core {core_index} out of range")
        return core_index * self.sockets // self.cores

    def restricted(self, cores: int, name: str | None = None) -> "MachineSpec":
        """A copy limited to ``cores`` logical cores (the paper's tasksets)."""
        return MachineSpec(
            name=name or f"{self.name}-{cores}c",
            cores=cores,
            clock_ghz=self.clock_ghz,
            dram_gb=self.dram_gb,
            nic_gbps=self.nic_gbps,
            nic_irq_cores=min(self.nic_irq_cores, cores),
            sockets=min(self.sockets, cores),
            costs=self.costs,
        )
