"""Simulated threads.

A :class:`SimThread` wraps a generator of kernel operations (see
:mod:`repro.kernel.ops`) plus the scheduling state the paper's probes
observe: when it became runnable (for ``runqlat``/Active-Exe), which core
it last ran on (for wake affinity and HITM accounting), and its CFS-style
virtual runtime.
"""

from __future__ import annotations

import enum
from typing import Any, Generator, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.ops import KernelOp


class ThreadState(enum.Enum):
    """Lifecycle states, mirroring the kernel's task states."""

    NEW = "new"
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class SimThread:
    """One simulated OS thread."""

    _next_tid = 1

    def __init__(self, name: str, body: Generator["KernelOp", Any, Any]):
        self.tid = SimThread._next_tid
        SimThread._next_tid += 1
        self.name = name
        self.body = body
        self.state = ThreadState.NEW
        self.vruntime = 0.0
        # Timestamp of the last transition to RUNNABLE (runqlat start).
        self.runnable_since = 0.0
        # The core this thread last executed on (wake affinity hint).
        self.last_core: Optional[int] = None
        # Value to send into the generator on next resume.
        self.send_value: Any = None
        # Remaining CPU time of a preempted Compute op, if any.
        self.pending_compute: float = 0.0
        self.pending_compute_tag: Optional[str] = None
        # Time actually spent running in the current timeslice.
        self.slice_used = 0.0
        # Set while the thread sits on a futex/eventfd/epoll wait list.
        self.block_reason: Optional[str] = None
        # Cancellation hook for a blocking-op timeout, if armed.
        self.wait_timer = None
        # Evaluated at resume to produce a fresh send value (e.g. the epoll
        # ready list as of when the thread actually runs, not when woken).
        self.resume_hook = None
        # Traces whose message/handoff caused the most recent wake; consumed
        # when the thread begins running to attribute its runqueue wait.
        self.wake_riders = None

    @property
    def alive(self) -> bool:
        """True until the thread's generator finishes."""
        return self.state is not ThreadState.DONE

    def __repr__(self) -> str:
        return f"SimThread({self.name}#{self.tid}, {self.state.value})"
