"""CFS-like multicore scheduler with pluggable wakeup placement policies.

The paper's primary finding is that *non-optimal OS scheduler decisions can
degrade microservice tail latency by up to ~87 %*, with the dominant
overhead being Active→Exe time (the ``runqlat`` wait between a thread
becoming runnable and actually executing).  This scheduler reproduces the
mechanisms behind that finding:

* per-core run queues ordered by virtual runtime, with timeslice
  preemption and context-switch costs;
* a C-state idle model: the longer a core idled, the more expensive the
  wakeup — which is why the paper sees *higher median latency at 100 QPS
  than at 1 000 QPS* (Fig. 10);
* pluggable placement policies: :class:`WakeAffinityPlacement` models a
  well-behaved scheduler, while :class:`RandomPlacement` and
  :class:`WorstFitPlacement` model the non-optimal decisions the paper
  blames for tail degradation (queueing a woken thread behind busy cores).

The scheduler is also the kernel-op interpreter: it pulls operations from
thread generators, charges their costs against core time, and implements
their semantics (futex queues, epoll readiness, eventfd counters).

This module is the hottest Python in the simulator (every kernel op of
every thread flows through it), so the interpreter paths avoid per-op
closures and allocations: core occupancy uses an epoch counter instead of
cancellable timers, blocking-op timeout cleanup passes the wait list
instead of capturing it in a closure, and the placement policies track
their minima inline rather than through ``min(key=...)`` lambdas.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, List, Optional, Sequence, TYPE_CHECKING

from repro.kernel.config import OsCosts
from repro.kernel.futex import AtomicAccess, WAKE_ALL
from repro.kernel.ops import (
    Compute,
    EpollWait,
    EventfdRead,
    EventfdWrite,
    FutexWait,
    FutexWake,
    Nanosleep,
    SockRecv,
    SockSend,
    YieldCpu,
)
from repro.kernel.threads import SimThread, ThreadState
from repro.sim.core import Simulation
from repro.sim.rng import lognormal_from_median_sigma
from repro.telemetry.critpath import riders

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.machine import Machine

#: Minimum slice a preempting compute still receives, in microseconds.
MIN_GRANULARITY_US = 0.5


def _return_true() -> bool:
    """Shared resume hook for futex waits (avoids a lambda per wait)."""
    return True


class Core:
    """One logical CPU: a run queue plus the currently executing thread."""

    __slots__ = (
        "index",
        "runqueue",
        "current",
        "idle_since",
        "slice_end",
        "dispatch_pending",
        "busy_epoch",
        "busy_then",
        "busy_args",
        "busy_until",
        "rq_seq",
        "busy_since_tick",
        "freq_factor",
        "socket",
    )

    def __init__(self, index: int, socket: int = 0):
        self.index = index
        self.runqueue: List[tuple] = []  # heap of (vruntime, seq, thread)
        self.current: Optional[SimThread] = None
        self.idle_since: Optional[float] = 0.0
        self.slice_end = 0.0
        self.dispatch_pending = False
        # Occupancy continuation: epoch-stamped so interrupt CPU-steal can
        # invalidate an in-flight completion without heap surgery.
        self.busy_epoch = 0
        self.busy_then: Optional[Callable] = None
        self.busy_args: tuple = ()
        self.busy_until = 0.0
        self.rq_seq = 0
        self.busy_since_tick = False
        # DVFS state: 1.0 = full clock, dvfs_min_factor = deepest idle clock.
        self.freq_factor = 1.0
        # NUMA socket this core sits on.
        self.socket = socket

    @property
    def load(self) -> int:
        """Run-queue depth plus the running thread (for least-loaded picks)."""
        return len(self.runqueue) + (1 if self.current is not None else 0)

    def push(self, thread: SimThread) -> None:
        """Enqueue a runnable thread ordered by virtual runtime."""
        self.rq_seq += 1
        heapq.heappush(self.runqueue, (thread.vruntime, self.rq_seq, thread))

    def pop(self) -> Optional[SimThread]:
        """Dequeue the minimum-vruntime runnable thread."""
        if not self.runqueue:
            return None
        return heapq.heappop(self.runqueue)[2]

    def min_vruntime(self) -> float:
        """Lowest vruntime present on this core (for enqueue normalization)."""
        current = self.current
        if self.runqueue:
            queued = self.runqueue[0][0]
            if current is not None and current.vruntime < queued:
                return current.vruntime
            return queued
        if current is not None:
            return current.vruntime
        return 0.0


class PlacementPolicy:
    """Decides which core a woken thread is enqueued on."""

    name = "abstract"

    def choose_core(self, thread: SimThread, cores: Sequence[Core], rng) -> Core:
        """Return the core to enqueue ``thread`` on."""
        raise NotImplementedError

    def wake_delay_us(self, rng) -> float:
        """Extra latency before the target core reacts to the wakeup."""
        return 0.0


class WakeAffinityPlacement(PlacementPolicy):
    """A well-behaved scheduler: prefer the last core if idle, then an idle
    core on the *same NUMA socket*, then any idle core, else the
    least-loaded core.  Models Linux's wake-affine plus idle-sibling
    search behaving well (the scheduler domain hierarchy keeps wakeups
    socket-local when it can)."""

    name = "wake-affinity"

    def choose_core(self, thread: SimThread, cores: Sequence[Core], rng) -> Core:
        last = thread.last_core
        home_socket = None
        if last is not None:
            core = cores[last]
            if core.current is None and not core.runqueue:
                return core
            home_socket = core.socket
        start = last if last is not None else 0
        n = len(cores)
        fallback_idle = None
        for offset in range(n):
            core = cores[(start + offset) % n]
            if core.current is None and not core.runqueue:
                if home_socket is None or core.socket == home_socket:
                    return core
                if fallback_idle is None:
                    fallback_idle = core
        if fallback_idle is not None:
            return fallback_idle
        # Least-loaded, index as tie-break (tracked inline: this runs on
        # every saturated wakeup).
        best = cores[0]
        best_load = best.load
        for core in cores:
            load = core.load
            if load < best_load:
                best, best_load = core, load
        return best


class RandomPlacement(PlacementPolicy):
    """A non-optimal scheduler: place wakeups on a uniformly random core,
    ignoring idleness — woken threads regularly queue behind busy cores."""

    name = "random"

    def __init__(self, wake_delay_median_us: float = 0.0, wake_delay_sigma: float = 0.6):
        self.wake_delay_median_us = wake_delay_median_us
        self.wake_delay_sigma = wake_delay_sigma

    def choose_core(self, thread: SimThread, cores: Sequence[Core], rng) -> Core:
        return cores[rng.randrange(len(cores))]

    def wake_delay_us(self, rng) -> float:
        if self.wake_delay_median_us <= 0:
            return 0.0
        return lognormal_from_median_sigma(rng, self.wake_delay_median_us, self.wake_delay_sigma)


class WorstFitPlacement(PlacementPolicy):
    """The adversarial scheduler for the A/B experiment: pack wakeups onto
    the busiest cores (plus an optional reaction delay), maximizing
    Active→Exe queueing."""

    name = "worst-fit"

    def __init__(self, wake_delay_median_us: float = 0.0, wake_delay_sigma: float = 0.6):
        self.wake_delay_median_us = wake_delay_median_us
        self.wake_delay_sigma = wake_delay_sigma

    def choose_core(self, thread: SimThread, cores: Sequence[Core], rng) -> Core:
        # max by (load, -index): highest load, lowest index on ties.
        best = cores[0]
        best_load = best.load
        for core in cores[1:]:
            load = core.load
            if load > best_load:
                best, best_load = core, load
        return best

    def wake_delay_us(self, rng) -> float:
        if self.wake_delay_median_us <= 0:
            return 0.0
        return lognormal_from_median_sigma(rng, self.wake_delay_median_us, self.wake_delay_sigma)


class Scheduler:
    """Run queues, dispatching, and the kernel-op interpreter for one machine."""

    def __init__(
        self,
        sim: Simulation,
        machine: "Machine",
        n_cores: int,
        costs: OsCosts,
        policy: PlacementPolicy,
    ):
        self.sim = sim
        self.machine = machine
        self.costs = costs
        self.policy = policy
        self.cores = [
            Core(i, socket=machine.spec.socket_of(i)) for i in range(n_cores)
        ]
        self.rng = machine.rng.py(f"sched:{machine.name}")
        self.threads: List[SimThread] = []
        # Hot-path caches: the telemetry hub and machine name never change.
        self._telemetry = machine.telemetry
        self._mname = machine.name
        # Traces responsible for wakes happening right now (set around the
        # synchronous wake chain of a traced socket delivery / futex wake),
        # transferred onto each woken thread so its runqueue wait can be
        # attributed to those requests when it finally runs.
        self._pending_wake_riders = None
        # Optional MachineEnergy account (repro.energy). Strictly passive:
        # hooks below only observe the busy/idle transitions the scheduler
        # already makes; None (the default) costs one comparison per switch.
        self.energy = None
        self._handlers = {
            Compute: self._op_compute,
            AtomicAccess: self._op_atomic,
            FutexWait: self._op_futex_wait,
            FutexWake: self._op_futex_wake,
            EpollWait: self._op_epoll_wait,
            SockSend: self._op_sock_send,
            SockRecv: self._op_sock_recv,
            EventfdWrite: self._op_eventfd_write,
            EventfdRead: self._op_eventfd_read,
            Nanosleep: self._op_nanosleep,
            YieldCpu: self._op_yield,
        }

    # -- telemetry shorthands ------------------------------------------------
    @property
    def telemetry(self):
        return self.machine.telemetry

    def _count_syscall(self, name: str) -> None:
        self._telemetry.count_syscall(self._mname, name)

    def _softirq_sample(self, kind: str, median: float, sigma: float) -> float:
        latency = lognormal_from_median_sigma(self.rng, median, sigma)
        self._telemetry.record_irq(self._mname, kind, latency)
        return latency

    # -- thread lifecycle ------------------------------------------------------
    def spawn(self, thread: SimThread) -> SimThread:
        """Create a thread: charge clone/mmap/mprotect and make it runnable."""
        for syscall in ("clone", "mmap", "mmap", "mprotect"):
            self._count_syscall(syscall)
        self.threads.append(thread)
        self.make_runnable(thread)
        return thread

    def make_runnable(self, thread: SimThread) -> None:
        """Wake path: enqueue per policy and kick the target core."""
        state = thread.state
        if state is not ThreadState.BLOCKED and state is not ThreadState.NEW \
                and state is not ThreadState.RUNNING:
            raise RuntimeError(f"cannot wake {thread} in state {state}")
        timer = thread.wait_timer
        if timer is not None:
            timer.cancel()
            thread.wait_timer = None
        thread.state = ThreadState.RUNNABLE
        thread.runnable_since = self.sim._now
        thread.block_reason = None
        # Overwrite (never merge): a wake with no traced cause must clear
        # riders left by an earlier, already-attributed wake.
        thread.wake_riders = self._pending_wake_riders
        core = self.policy.choose_core(thread, self.cores, self.rng)
        # CFS enqueue normalization: don't let long sleepers starve others,
        # don't let them win everything either.
        floor = core.min_vruntime() - 1000.0
        if thread.vruntime < floor:
            thread.vruntime = floor
        core.push(thread)
        # A wakeup raises a SCHED softirq (IPI + resched bookkeeping).
        self._softirq_sample(
            "sched", self.costs.softirq_sched_median_us, self.costs.softirq_sched_sigma
        )
        self._kick(core)

    def _kick(self, core: Core) -> None:
        """Arrange a dispatch on ``core`` if it is idle and not already kicked."""
        if core.current is not None or core.dispatch_pending or not core.runqueue:
            return
        core.dispatch_pending = True
        delay = (
            self.costs.wakeup_ipi_us
            + self.policy.wake_delay_us(self.rng)
            + self.costs.runq_per_waiter_us * len(core.runqueue)
        )
        self.sim.defer_in(delay, self._dispatch, core)

    def _dispatch(self, core: Core) -> None:
        core.dispatch_pending = False
        if core.current is not None:
            return
        thread = core.pop()
        if thread is None:
            if core.idle_since is None:
                core.idle_since = self.sim._now
                if self.energy is not None:
                    self.energy.on_sleep(core.index, self.sim._now)
            return
        core.current = thread
        if core.idle_since is not None:
            idle_time = self.sim._now - core.idle_since
            exit_latency, _state = self.costs.cstate_exit_latency(idle_time)
            switch_cost = exit_latency + self.costs.runq_dispatch_us
            if self.energy is not None:
                self.energy.on_wake(
                    core.index, core.idle_since, self.sim._now, _state
                )
            core.idle_since = None
            # DVFS: the clock decayed toward minimum while the core idled.
            if self.costs.dvfs_enabled:
                min_f = self.costs.dvfs_min_factor
                decay = math.exp(-idle_time / self.costs.dvfs_decay_us)
                core.freq_factor = min_f + (core.freq_factor - min_f) * decay
        else:
            switch_cost = self.costs.context_switch_us
        self._telemetry.count_context_switch(self._mname)
        core.busy_since_tick = True
        self._occupy(core, switch_cost, self._begin_run, core, thread)

    def _begin_run(self, core: Core, thread: SimThread) -> None:
        thread.state = ThreadState.RUNNING
        thread.last_core = core.index
        now = self.sim._now
        wait = now - thread.runnable_since
        self._telemetry.record_runqlat(self._mname, wait)
        carried = thread.wake_riders
        if carried is not None:
            thread.wake_riders = None
            if wait > 0.0:
                for trace, rid in carried:
                    trace.add_segment(
                        "active_exe", self._mname, thread.runnable_since, now, rid
                    )
                self._telemetry.record_attributed(self._mname, "active_exe", wait)
        core.slice_end = now + self.costs.timeslice_us
        if thread.pending_compute > 0.0:
            remaining = thread.pending_compute
            thread.pending_compute = 0.0
            self._run_compute(core, thread, remaining)
            return
        hook = thread.resume_hook
        thread.resume_hook = None
        thread.send_value = hook() if hook is not None else thread.send_value
        self._advance(core, thread)

    def _advance(self, core: Core, thread: SimThread) -> None:
        """Pull and interpret the thread's next kernel op."""
        # Op-boundary preemption check.
        if self.sim._now >= core.slice_end and core.runqueue:
            self._preempt(core, thread, remaining_compute=0.0)
            return
        try:
            op = thread.body.send(thread.send_value)
        except StopIteration:
            self._thread_exit(core, thread)
            return
        thread.send_value = None
        try:
            handler = self._handlers[op.__class__]
        except KeyError:
            raise TypeError(f"{thread} yielded unknown op {op!r}") from None
        handler(core, thread, op)

    def _thread_exit(self, core: Core, thread: SimThread) -> None:
        thread.state = ThreadState.DONE
        self._switch_away(core)

    def _switch_away(self, core: Core) -> None:
        core.current = None
        if core.runqueue:
            self._dispatch(core)
        else:
            core.idle_since = self.sim._now
            if self.energy is not None:
                self.energy.on_sleep(core.index, self.sim._now)

    def _preempt(self, core: Core, thread: SimThread, remaining_compute: float) -> None:
        thread.pending_compute = remaining_compute
        thread.state = ThreadState.RUNNABLE
        thread.runnable_since = self.sim._now
        core.push(thread)  # preempted threads stay on their core
        self._switch_away(core)

    # -- core occupancy --------------------------------------------------------
    def _occupy(self, core: Core, cost: float, then: Callable, *args) -> None:
        """Occupy ``core`` for ``cost`` µs, then continue with ``then``.

        The continuation is epoch-stamped rather than held in a cancellable
        timer: CPU-steal bumps the epoch and re-defers, and the stale heap
        entry no-ops when popped.
        """
        core.busy_until = self.sim._now + cost
        core.busy_epoch += 1
        core.busy_then = then
        core.busy_args = args
        self.sim.defer_at(core.busy_until, self._occupy_done, core, core.busy_epoch)

    def _occupy_done(self, core: Core, epoch: int) -> None:
        if core.busy_epoch != epoch:
            return  # superseded by a CPU-steal extension
        then = core.busy_then
        args = core.busy_args
        core.busy_then = None
        core.busy_args = ()
        then(*args)

    def steal_cpu(self, core_index: int, cost: float) -> None:
        """Interrupt handling steals CPU from whatever the core is doing."""
        core = self.cores[core_index]
        core.busy_since_tick = True
        if core.busy_then is None:
            return
        core.busy_epoch += 1
        core.busy_until += cost
        self.sim.defer_at(core.busy_until, self._occupy_done, core, core.busy_epoch)

    def least_busy_irq_core(self, limit: int) -> int:
        """Index of the least-loaded core among the first ``limit`` cores."""
        cores = self.cores
        if limit < 1:
            limit = 1
        best = cores[0]
        best_load = best.load
        for core in cores[1:limit]:
            load = core.load
            if load < best_load:
                best, best_load = core, load
        return best.index

    # -- blocking helper ---------------------------------------------------------
    def _block(
        self,
        core: Core,
        thread: SimThread,
        reason: str,
        resume_hook: Optional[Callable[[], object]],
        timeout_us: Optional[float],
        waitlist: Optional[list],
    ) -> None:
        """Park ``thread``; on timeout it is removed from ``waitlist`` (if
        given) and made runnable again."""
        thread.state = ThreadState.BLOCKED
        thread.block_reason = reason
        thread.resume_hook = resume_hook
        self._softirq_sample(
            "block", self.costs.softirq_block_median_us, self.costs.softirq_block_sigma
        )
        if timeout_us is not None:
            thread.wait_timer = self.sim.call_in(
                timeout_us, self._wait_timeout, thread, waitlist
            )
        self._switch_away(core)

    def _wait_timeout(self, thread: SimThread, waitlist: Optional[list]) -> None:
        if thread.state is not ThreadState.BLOCKED:
            return
        thread.wait_timer = None
        if waitlist is not None:
            try:
                waitlist.remove(thread)
            except ValueError:
                pass
        self.make_runnable(thread)

    # -- op handlers --------------------------------------------------------------
    def _op_compute(self, core: Core, thread: SimThread, op: Compute) -> None:
        self._run_compute(core, thread, op.us)

    def _run_compute(self, core: Core, thread: SimThread, us: float) -> None:
        # DVFS: application compute stretches on a downclocked core, and
        # running warms the clock back up.
        if self.costs.dvfs_enabled:
            us = us / core.freq_factor
            ramp = math.exp(-us / self.costs.dvfs_ramp_us)
            core.freq_factor = 1.0 - (1.0 - core.freq_factor) * ramp
        available = core.slice_end - self.sim._now
        if us > available and core.runqueue:
            run_for = available if available > MIN_GRANULARITY_US else MIN_GRANULARITY_US
            thread.vruntime += run_for
            self._occupy(core, run_for, self._preempt, core, thread, us - run_for)
        else:
            thread.vruntime += us
            self._occupy(core, us, self._advance, core, thread)

    def _touch_cacheline(self, core: Core, line) -> float:
        """HITM accounting for a shared-cacheline access; returns extra cost.

        Cross-core accesses are HITM events; when the previous owner sat
        on the other NUMA socket, the line crosses the interconnect —
        counted separately and costed higher."""
        previous = line.last_core
        if previous is not None and previous != core.index:
            remote = self.cores[previous].socket != core.socket
            self._telemetry.count_hitm(self._mname, remote=remote)
            line.last_core = core.index
            return (
                self.costs.hitm_remote_transfer_us
                if remote
                else self.costs.hitm_transfer_us
            )
        line.last_core = core.index
        return 0.0

    def _op_atomic(self, core: Core, thread: SimThread, op: AtomicAccess) -> None:
        cost = self.costs.atomic_op_us + self._touch_cacheline(core, op.cacheline)
        thread.vruntime += cost
        self._occupy(core, cost, self._advance, core, thread)

    def _op_futex_wait(self, core: Core, thread: SimThread, op: FutexWait) -> None:
        self._count_syscall("futex")
        # The kernel reads/updates the futex word: a cross-core HITM.
        cost = self.costs.syscall_cost("futex") + self._touch_cacheline(
            core, op.futex.cacheline
        )
        thread.vruntime += cost
        self._occupy(core, cost, self._futex_wait_body, core, thread, op)

    def _futex_wait_body(self, core: Core, thread: SimThread, op: FutexWait) -> None:
        if op.futex.value != op.expected:
            # EAGAIN: the word moved between userspace check and syscall.
            thread.send_value = False
            self._advance(core, thread)
            return
        waiters = op.futex.waiters
        waiters.append(thread)
        self._block(
            core,
            thread,
            reason="futex",
            resume_hook=_return_true,
            timeout_us=op.timeout_us,
            waitlist=waiters,
        )

    def _op_futex_wake(self, core: Core, thread: SimThread, op: FutexWake) -> None:
        self._count_syscall("futex")
        cost = self.costs.syscall_cost("futex") + self._touch_cacheline(
            core, op.futex.cacheline
        )
        thread.vruntime += cost
        self._occupy(core, cost, self._futex_wake_body, core, thread, op)

    def _futex_wake_body(self, core: Core, thread: SimThread, op: FutexWake) -> None:
        waiters = op.futex.waiters
        n = min(op.n, len(waiters)) if op.n != WAKE_ALL else len(waiters)
        # The enqueuer (e.g. TaskQueue.put) may have parked the traces
        # whose work this wake hands off; credit the waiter's runqueue
        # wait to them.
        carried = op.futex.wake_riders
        previous = self._pending_wake_riders
        if carried is not None:
            op.futex.wake_riders = None
            self._pending_wake_riders = carried
        woken = 0
        for _ in range(n):
            waiter = waiters.pop(0)
            self.make_runnable(waiter)
            woken += 1
        self._pending_wake_riders = previous
        if woken:
            self._telemetry.count_contended_wake(self._mname)
        thread.send_value = woken
        self._advance(core, thread)

    def _op_epoll_wait(self, core: Core, thread: SimThread, op: EpollWait) -> None:
        self._count_syscall("epoll_pwait")
        cost = self.costs.syscall_cost("epoll_pwait")
        thread.vruntime += cost
        self._occupy(core, cost, self._epoll_wait_body, core, thread, op)

    def _epoll_wait_body(self, core: Core, thread: SimThread, op: EpollWait) -> None:
        ready = op.epoll.snapshot_ready()
        if ready:
            thread.send_value = ready
            self._advance(core, thread)
            return
        if op.timeout_us == 0:
            thread.send_value = []
            self._advance(core, thread)
            return
        waiters = op.epoll.waiters
        waiters.append(thread)
        self._block(
            core,
            thread,
            reason="epoll",
            resume_hook=op.epoll.snapshot_ready,
            timeout_us=op.timeout_us,
            waitlist=waiters,
        )

    def wake_epoll_waiters(self, waiters: List[SimThread]) -> None:
        """Wake-all epoll semantics (called from socket delivery)."""
        for waiter in waiters:
            if waiter.state is ThreadState.BLOCKED:
                self.make_runnable(waiter)

    def _op_sock_send(self, core: Core, thread: SimThread, op: SockSend) -> None:
        self._count_syscall("sendmsg")
        cost = self.costs.syscall_cost("sendmsg")
        thread.vruntime += cost
        self._occupy(core, cost, self._sock_send_body, core, thread, op)

    def _sock_send_body(self, core: Core, thread: SimThread, op: SockSend) -> None:
        tx_latency = self._softirq_sample(
            "net_tx", self.costs.softirq_net_tx_median_us, self.costs.softirq_net_tx_sigma
        )
        carried = riders(op.payload)
        if carried:
            now = self.sim._now
            for trace, rid in carried:
                trace.add_segment("net_tx", self._mname, now, now + tx_latency, rid)
            self._telemetry.record_attributed(self._mname, "net_tx", tx_latency)
        self.machine.transmit(op.sock, op.dst, op.payload, op.size_bytes, tx_latency)
        thread.send_value = None
        self._advance(core, thread)

    def _op_sock_recv(self, core: Core, thread: SimThread, op: SockRecv) -> None:
        self._count_syscall("recvmsg")
        # The rx-queue head was last written by the delivering softirq core.
        cost = self.costs.syscall_cost("recvmsg") + self._touch_cacheline(
            core, op.sock.cacheline
        )
        thread.vruntime += cost
        self._occupy(core, cost, self._sock_recv_body, core, thread, op)

    def _sock_recv_body(self, core: Core, thread: SimThread, op: SockRecv) -> None:
        thread.send_value = op.sock.pop()
        self._advance(core, thread)

    def _op_eventfd_write(self, core: Core, thread: SimThread, op: EventfdWrite) -> None:
        self._count_syscall("write")
        cost = self.costs.syscall_cost("write")
        thread.vruntime += cost
        self._occupy(core, cost, self._eventfd_write_body, core, thread, op)

    def _eventfd_write_body(self, core: Core, thread: SimThread, op: EventfdWrite) -> None:
        op.efd.add(op.value)
        if op.efd.readers:
            reader = op.efd.readers.pop(0)
            self.make_runnable(reader)
        thread.send_value = None
        self._advance(core, thread)

    def _op_eventfd_read(self, core: Core, thread: SimThread, op: EventfdRead) -> None:
        self._count_syscall("read")
        cost = self.costs.syscall_cost("read")
        thread.vruntime += cost
        self._occupy(core, cost, self._eventfd_read_body, core, thread, op)

    def _eventfd_read_body(self, core: Core, thread: SimThread, op: EventfdRead) -> None:
        if op.efd.counter > 0:
            thread.send_value = op.efd.consume()
            self._advance(core, thread)
            return
        readers = op.efd.readers
        readers.append(thread)
        self._block(
            core,
            thread,
            reason="eventfd",
            resume_hook=op.efd.consume,
            timeout_us=None,
            waitlist=readers,
        )

    def _op_nanosleep(self, core: Core, thread: SimThread, op: Nanosleep) -> None:
        self._count_syscall("nanosleep")
        cost = self.costs.syscall_cost("nanosleep")
        thread.vruntime += cost
        self._occupy(core, cost, self._nanosleep_body, core, thread, op)

    def _nanosleep_body(self, core: Core, thread: SimThread, op: Nanosleep) -> None:
        thread.state = ThreadState.BLOCKED
        thread.block_reason = "nanosleep"
        thread.resume_hook = None
        self.sim.defer_in(op.us, self._sleep_expired, thread)
        self._switch_away(core)

    def _sleep_expired(self, thread: SimThread) -> None:
        if thread.state is ThreadState.BLOCKED:
            self.make_runnable(thread)

    def _op_yield(self, core: Core, thread: SimThread, op: YieldCpu) -> None:
        self._count_syscall("sched_yield")
        cost = self.costs.syscall_cost("sched_yield")
        thread.vruntime += cost
        self._occupy(core, cost, self._yield_body, core, thread)

    def _yield_body(self, core: Core, thread: SimThread) -> None:
        if not core.runqueue:
            self._advance(core, thread)
            return
        thread.state = ThreadState.RUNNABLE
        thread.runnable_since = self.sim._now
        core.push(thread)
        self._switch_away(core)
