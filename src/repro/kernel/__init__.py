"""A discrete-event simulated operating system.

This package substitutes for the Linux 4.13 kernel on the paper's Skylake
testbed (DESIGN.md §2).  It models the pieces of the OS whose sub-millisecond
costs the paper characterizes:

* :mod:`repro.kernel.machine` — a multicore machine with NIC and sockets.
* :mod:`repro.kernel.scheduler` — CFS-like run queues, context switches,
  C-state idle model, and pluggable wakeup placement policies.
* :mod:`repro.kernel.threads` — simulated threads written as generators of
  kernel operations.
* :mod:`repro.kernel.futex` — futexes plus the userspace ``Mutex`` and
  ``CondVar`` built on them (the source of the paper's futex storms).
* :mod:`repro.kernel.sockets` — sockets, epoll (wake-all), and eventfds.
* :mod:`repro.kernel.interrupts` — hardirq/softirq pipelines with latency
  sampling and CPU stealing.
"""

from repro.kernel.config import CStatePoint, MachineSpec, OsCosts
from repro.kernel.futex import CondVar, Futex, Mutex
from repro.kernel.machine import Machine
from repro.kernel.ops import (
    Compute,
    EpollWait,
    EventfdRead,
    EventfdWrite,
    FutexWait,
    FutexWake,
    Nanosleep,
    SockRecv,
    SockSend,
    YieldCpu,
)
from repro.kernel.scheduler import (
    PlacementPolicy,
    RandomPlacement,
    Scheduler,
    WakeAffinityPlacement,
    WorstFitPlacement,
)
from repro.kernel.sockets import Epoll, Eventfd, KSocket
from repro.kernel.threads import SimThread, ThreadState

__all__ = [
    "CStatePoint",
    "CondVar",
    "Compute",
    "Epoll",
    "EpollWait",
    "Eventfd",
    "EventfdRead",
    "EventfdWrite",
    "Futex",
    "FutexWait",
    "FutexWake",
    "KSocket",
    "Machine",
    "MachineSpec",
    "Mutex",
    "Nanosleep",
    "OsCosts",
    "PlacementPolicy",
    "RandomPlacement",
    "Scheduler",
    "SimThread",
    "SockRecv",
    "SockSend",
    "ThreadState",
    "WakeAffinityPlacement",
    "WorstFitPlacement",
    "YieldCpu",
]
