"""Sockets, epoll instances, and eventfds.

The socket layer reproduces the structure gRPC's completion queues sit on:

* :class:`KSocket` — a datagram-style RPC socket with an rx queue and a
  userspace mutex (the "socket lock" the paper's futex storms fight over).
* :class:`Epoll` — level-triggered readiness with **wake-all** semantics
  (no EPOLLEXCLUSIVE), so every parked poller thread wakes per arrival and
  all but one find the queue already drained.  This is the mechanism
  behind the paper's finding that futex calls *per query* are highest at
  low load.
* :class:`Eventfd` — counter semaphore used for completion-queue kicks
  (gRPC's ``read``/``write`` syscall traffic).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, List, Optional, Set, Tuple, TYPE_CHECKING

from repro.kernel.futex import Cacheline, Mutex

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.machine import Machine
    from repro.kernel.threads import SimThread


class KSocket:
    """A simulated RPC socket bound to ``(machine, port)``."""

    def __init__(self, machine: "Machine", port: int):
        self.machine = machine
        self.port = port
        self.address: Tuple[str, int] = (machine.name, port)
        self.rx_queue: Deque[Any] = deque()
        # Userspace lock serializing access from poller threads.
        self.lock = Mutex(name=f"socklock:{machine.name}:{port}")
        # The queue head cacheline bounces between the softirq core that
        # delivers and the poller core that receives (a HITM source).
        self.cacheline = Cacheline()
        self._epolls: Set["Epoll"] = set()

    # -- kernel side -------------------------------------------------------
    def deliver(self, message: Any) -> None:
        """Softirq context: enqueue an arrived message and notify epolls."""
        self.rx_queue.append(message)
        for epoll in self._epolls:
            epoll.notify(self)

    # -- syscall side -------------------------------------------------------
    def pop(self) -> Optional[Any]:
        """Dequeue one message (recvmsg body); None when empty."""
        if not self.rx_queue:
            return None
        message = self.rx_queue.popleft()
        if not self.rx_queue:
            for epoll in self._epolls:
                epoll.clear_ready(self)
        return message

    @property
    def readable(self) -> bool:
        """True while messages are queued."""
        return bool(self.rx_queue)

    def __repr__(self) -> str:
        return f"KSocket({self.address}, q={len(self.rx_queue)})"


class Epoll:
    """A level-triggered epoll instance with wake-all notification."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.watched: Set[KSocket] = set()
        self.ready: Set[KSocket] = set()
        self.waiters: List["SimThread"] = []

    def add(self, sock: KSocket) -> None:
        """EPOLL_CTL_ADD: watch a socket (readiness re-checked level-style)."""
        self.watched.add(sock)
        sock._epolls.add(self)
        if sock.readable:
            self.ready.add(sock)

    def remove(self, sock: KSocket) -> None:
        """EPOLL_CTL_DEL."""
        self.watched.discard(sock)
        sock._epolls.discard(self)
        self.ready.discard(sock)

    def notify(self, sock: KSocket) -> None:
        """Kernel side: mark readable and wake *all* parked waiters."""
        self.ready.add(sock)
        if self.waiters:
            waiters, self.waiters = self.waiters, []
            self.machine.scheduler.wake_epoll_waiters(waiters)

    def clear_ready(self, sock: KSocket) -> None:
        """Called when a socket's queue drains (level-triggered reset)."""
        self.ready.discard(sock)

    def snapshot_ready(self) -> List[KSocket]:
        """Current readable sockets (evaluated fresh at thread resume)."""
        return [sock for sock in self.ready if sock.readable]


class Eventfd:
    """An eventfd counter used for completion-queue kicks."""

    def __init__(self, machine: "Machine"):
        self.machine = machine
        self.counter = 0
        self.readers: List["SimThread"] = []

    def add(self, value: int) -> None:
        """write(): bump the counter (reader wakeup handled by scheduler)."""
        self.counter += value

    def consume(self) -> int:
        """read(): drain and return the counter (0 if already drained)."""
        value = self.counter
        self.counter = 0
        return value
