"""Fault injection: deterministic perturbations of a simulated cell."""

from repro.faults.plan import (
    FaultPlan,
    LeafFaultInjector,
    LeafSlowdown,
    LeafStall,
    MidTierPressure,
    NetworkFault,
)

__all__ = [
    "FaultPlan",
    "LeafFaultInjector",
    "LeafSlowdown",
    "LeafStall",
    "MidTierPressure",
    "NetworkFault",
]
