"""Deterministic, seed-driven fault injectors (DeathStarBench-style).

A :class:`FaultPlan` bundles up to four perturbations of one simulated
cell, mirroring the hazards production OLDI services see:

* **leaf slowdown** — every leaf sub-request's service time is inflated
  by a fixed multiplier and/or, with some probability, a Pareto-tailed
  extra delay (a straggler shard: background compaction, page-cache
  miss, co-located antagonist);
* **leaf stall / crash** — a leaf stops serving for a window and then
  recovers (SIGSTOP-style stall that parks requests until recovery, or a
  crash that silently drops them until recovery);
* **mid-tier queue pressure** — antagonist threads on the mid-tier burn
  CPU on a jittered duty cycle, lengthening the runqueue waits the paper
  identifies as the dominant tail contributor (Figs. 15-18);
* **network fault** — extra per-packet delay/jitter and drop probability
  on the fabric, optionally scoped to destinations by name prefix.

Every stochastic choice draws from a named RNG stream derived from the
cluster's master seed (see :mod:`repro.sim.rng`), so an injected run is
bit-reproducible and — crucially — a plan with no injectors enabled
draws nothing and perturbs nothing: metrics stay bit-identical to a
fault-free run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from repro.kernel.ops import Compute, Nanosleep
from repro.sim.rng import exponential


@dataclass(frozen=True)
class LeafSlowdown:
    """Inflate leaf service times: fixed multiplier plus a Pareto tail."""

    # Every affected sub-request's compute time is multiplied by this.
    multiplier: float = 1.0
    # With this probability, add a Pareto-distributed extra delay.
    tail_probability: float = 0.0
    # Pareto scale (minimum extra delay, µs) and shape (smaller = heavier).
    tail_scale_us: float = 1_000.0
    tail_alpha: float = 1.8
    # Leaf indices affected (None = every leaf).
    leaves: Optional[Tuple[int, ...]] = None

    def applies_to(self, leaf_index: int) -> bool:
        return self.leaves is None or leaf_index in self.leaves

    @property
    def active(self) -> bool:
        return self.multiplier != 1.0 or self.tail_probability > 0.0


@dataclass(frozen=True)
class LeafStall:
    """One leaf stops serving during [start, start+duration), then recovers."""

    start_us: float
    duration_us: float
    # "stall": requests park until recovery (SIGSTOP / long GC pause).
    # "crash": requests are dropped silently until recovery.
    mode: str = "stall"
    leaves: Tuple[int, ...] = (0,)

    def __post_init__(self) -> None:
        if self.mode not in ("stall", "crash"):
            raise ValueError(f"bad stall mode: {self.mode}")

    def applies_to(self, leaf_index: int) -> bool:
        return leaf_index in self.leaves

    @property
    def end_us(self) -> float:
        return self.start_us + self.duration_us

    @property
    def active(self) -> bool:
        return self.duration_us > 0.0


@dataclass(frozen=True)
class MidTierPressure:
    """Antagonist threads burning mid-tier CPU on a jittered duty cycle."""

    hog_threads: int = 2
    busy_us: float = 150.0
    # Mean idle gap between bursts (exponentially jittered so hogs don't
    # run in lockstep with each other or the RPC pools).
    idle_mean_us: float = 300.0

    @property
    def active(self) -> bool:
        return self.hog_threads > 0 and self.busy_us > 0.0


@dataclass(frozen=True)
class NetworkFault:
    """Fabric-level delay/jitter/drop, optionally scoped by dst prefix."""

    extra_delay_us: float = 0.0
    jitter_mean_us: float = 0.0
    drop_probability: float = 0.0
    # Only packets to endpoints whose name starts with this are affected
    # (e.g. "hds-leaf"); None hits every hop.
    dst_prefix: Optional[str] = None

    def matches(self, dst_name: str) -> bool:
        return self.dst_prefix is None or dst_name.startswith(self.dst_prefix)

    @property
    def active(self) -> bool:
        return (
            self.extra_delay_us > 0.0
            or self.jitter_mean_us > 0.0
            or self.drop_probability > 0.0
        )


@dataclass(frozen=True)
class FaultPlan:
    """Everything injected into one cell.  All fields default to off."""

    leaf_slowdown: Optional[LeafSlowdown] = None
    leaf_stall: Optional[LeafStall] = None
    midtier_pressure: Optional[MidTierPressure] = None
    network: Optional[NetworkFault] = None

    @property
    def active(self) -> bool:
        """True when at least one injector would perturb the run."""
        return any(
            spec is not None and spec.active
            for spec in (
                self.leaf_slowdown,
                self.leaf_stall,
                self.midtier_pressure,
                self.network,
            )
        )

    def leaf_injector(self, leaf_index: int, machine) -> Optional["LeafFaultInjector"]:
        """The per-leaf injector for ``machine``, or None if nothing applies."""
        slowdown = self.leaf_slowdown
        if slowdown is not None and not (slowdown.active and slowdown.applies_to(leaf_index)):
            slowdown = None
        stall = self.leaf_stall
        if stall is not None and not (stall.active and stall.applies_to(leaf_index)):
            stall = None
        if slowdown is None and stall is None:
            return None
        return LeafFaultInjector(slowdown, stall, machine)

    def attach_midtier(self, machine) -> None:
        """Spawn the queue-pressure antagonists on a mid-tier machine."""
        pressure = self.midtier_pressure
        if pressure is None or not pressure.active:
            return
        for i in range(pressure.hog_threads):
            rng = machine.rng.py(f"fault:hog{i}")
            machine.spawn(f"fault-hog{i}", _hog_loop(pressure, rng))


class LeafFaultInjector:
    """Applies slowdown/stall decisions inside one leaf's serve path."""

    __slots__ = ("slowdown", "stall", "machine", "_rng", "drops", "stalls", "inflations")

    def __init__(
        self,
        slowdown: Optional[LeafSlowdown],
        stall: Optional[LeafStall],
        machine,
    ):
        self.slowdown = slowdown
        self.stall = stall
        self.machine = machine
        # One named stream per leaf machine: deterministic for a fixed
        # master seed, independent of every other subsystem's stream.
        self._rng = machine.rng.py("fault:leaf")
        self.drops = 0
        self.stalls = 0
        self.inflations = 0

    def pre_serve(self, now: float) -> Tuple[str, float]:
        """Decision before serving: ("ok"|"stall"|"drop", stall_us)."""
        stall = self.stall
        if stall is not None and stall.start_us <= now < stall.end_us:
            if stall.mode == "crash":
                self.drops += 1
                self.machine.telemetry.incr(f"fault_leaf_drops:{self.machine.name}")
                return "drop", 0.0
            self.stalls += 1
            self.machine.telemetry.incr(f"fault_leaf_stalls:{self.machine.name}")
            return "stall", stall.end_us - now
        return "ok", 0.0

    def inflate(self, compute_us: float) -> float:
        """Transform one sub-request's service time."""
        slowdown = self.slowdown
        if slowdown is None:
            return compute_us
        out = compute_us * slowdown.multiplier
        if slowdown.tail_probability > 0.0 and self._rng.random() < slowdown.tail_probability:
            # Pareto(scale, alpha): scale * U^(-1/alpha), heavy right tail.
            u = 1.0 - self._rng.random()
            out += slowdown.tail_scale_us * u ** (-1.0 / slowdown.tail_alpha)
            self.inflations += 1
            self.machine.telemetry.incr(f"fault_leaf_inflations:{self.machine.name}")
        return out


def _hog_loop(pressure: MidTierPressure, rng):
    """Antagonist thread body: burn CPU, sleep a jittered gap, repeat."""
    while True:
        yield Compute(pressure.busy_us, tag="fault-hog")
        yield Nanosleep(exponential(rng, pressure.idle_mean_us))
