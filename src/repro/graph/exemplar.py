"""Committed exemplar graphs for experiments and tests.

:func:`exemplar_graph` is a DeathStarBench-social-network-shaped DAG
(arXiv:1905.11055): five tiers deep on its longest path, with fan-in at
the composer, per-edge fan-out that multiplies into 16 storage lookups
per client query (2 timeline renders × 2 social-graph walks × 4 shard
reads), and an asynchronous fire-and-forget analytics edge off the
front-end.  :func:`onehop_graph` is the matching μSuite-shaped baseline:
the same front-end and the same storage node, one hop apart — the pair
the graph sweep uses to measure how depth amplifies a single slow hop.

In both graphs the storage node is terminal index 0 (declaration order),
so one :class:`~repro.faults.LeafSlowdown` plan targets the same "deep
leaf" in either topology.
"""

from __future__ import annotations

from repro.graph.config import GraphConfig, GraphEdge, GraphNode


def exemplar_graph(n_queries: int = 2000) -> GraphConfig:
    """The 5-tier social-network exemplar (8 nodes, one async edge)."""
    return GraphConfig(
        name="socialnet",
        root="frontend",
        n_queries=n_queries,
        nodes=(
            GraphNode(name="frontend", service_us=15.0, merge_us=5.0, cores=2),
            GraphNode(name="compose", service_us=25.0, merge_us=6.0, cores=2),
            GraphNode(name="timeline", service_us=20.0, merge_us=5.0, cores=2),
            GraphNode(name="social", service_us=18.0, merge_us=5.0, cores=2),
            # Terminal index 0: the deep storage tier the sweep injects at.
            GraphNode(name="store", service_us=30.0, cores=4),
            GraphNode(name="media", service_us=30.0, cores=2),
            GraphNode(name="user", service_us=25.0, cores=2),
            GraphNode(name="analytics", service_us=40.0, cores=1),
        ),
        edges=(
            GraphEdge(src="frontend", dst="compose"),
            GraphEdge(src="frontend", dst="analytics", mode="async"),
            GraphEdge(src="compose", dst="timeline", fanout=2),
            GraphEdge(src="compose", dst="media"),
            GraphEdge(src="compose", dst="user"),
            GraphEdge(src="timeline", dst="social", fanout=2),
            GraphEdge(src="social", dst="store", fanout=4),
        ),
    )


def pipeline_graph(
    tiers: int = 4,
    n_queries: int = 2000,
    service_us: float = 40.0,
    merge_us: float = 4.0,
    cores_per_tier: int = 2,
) -> GraphConfig:
    """A linear ``tiers``-deep chain for granularity studies.

    ``stage0 -> stage1 -> ... -> stage{n-1}``, each stage doing the same
    per-visit work on the same core count; the terminal stage declares no
    merge work (leaves never charge it), so the chain merges cleanly all
    the way to a monolith.  Coarsening with
    :func:`~repro.graph.granularity.coarsen_once` walks the granularity
    ladder at constant total cores and constant
    :func:`~repro.graph.granularity.work_per_query` — only the hop count
    (and with it the wakeup/idle structure) changes.
    """
    if tiers < 1:
        raise ValueError(f"tiers must be >= 1: {tiers}")
    nodes = tuple(
        GraphNode(
            name=f"stage{i}",
            service_us=service_us,
            merge_us=merge_us if i < tiers - 1 else 0.0,
            cores=cores_per_tier,
        )
        for i in range(tiers)
    )
    edges = tuple(
        GraphEdge(src=f"stage{i}", dst=f"stage{i + 1}") for i in range(tiers - 1)
    )
    return GraphConfig(
        name=f"pipeline{tiers}",
        root="stage0",
        n_queries=n_queries,
        nodes=nodes,
        edges=edges,
    )


def onehop_graph(n_queries: int = 2000) -> GraphConfig:
    """The μSuite-shaped one-hop baseline: gateway → 4 storage reads."""
    return GraphConfig(
        name="onehop",
        root="gateway",
        n_queries=n_queries,
        nodes=(
            GraphNode(name="gateway", service_us=15.0, merge_us=5.0, cores=2),
            # Same storage node as the exemplar's, one hop from the root.
            GraphNode(name="store", service_us=30.0, cores=4),
        ),
        edges=(GraphEdge(src="gateway", dst="store", fanout=4),),
    )


__all__ = ["exemplar_graph", "onehop_graph", "pipeline_graph"]
