"""Tier-granularity transforms: merge and split graph tiers.

Microservice granularity — how finely an application is decomposed into
RPC tiers — trades energy against performance (arXiv:2502.00482): every
extra hop adds network/OS overhead and fragments idle time into shallow
C-state residencies, while a coarser deployment loses isolation and
per-tier scaling.  These transforms walk a :class:`GraphConfig` along
that axis without changing *what* the application computes:

* :func:`merge_edge` absorbs a callee tier into its caller (one fewer
  hop; cores are pooled, the callee's per-visit work folds into the
  caller scaled by the edge fan-out, grandchild calls are lifted);
* :func:`split_node` cuts one tier into a front/back pair joined by a
  sync edge (one more hop; cores and service time are divided);
* :func:`coarsen_once` / :func:`monolith` iterate merges toward the
  single-tier deployment.

All transforms preserve :func:`work_per_query` — the expected compute a
query charges across the graph — and call semantics: only sync,
single-parent, default-knob edges merge, so request/response ordering
and side effects are unchanged.  Anything else raises
:class:`~repro.graph.config.GraphError` naming the obstacle.
"""

from __future__ import annotations

from dataclasses import replace
from typing import List

from repro.control.config import ControlConfig
from repro.graph.config import GraphConfig, GraphEdge, GraphError, GraphNode
from repro.suite.config import BatchConfig, CacheConfig, LbConfig


def work_per_query(graph: GraphConfig) -> float:
    """Expected compute (µs) one client query charges across the graph.

    Per node: visits × service_us, plus visits × merge_us for internal
    nodes (the builder charges response-path merge on internal nodes
    only).  This is the invariant :func:`merge_edge` and
    :func:`split_node` preserve.
    """
    visits = graph.visits_per_query()
    internal = {edge.src for edge in graph.edges}
    total = 0.0
    for node in graph.nodes:
        total += visits[node.name] * node.service_us
        if node.name in internal:
            total += visits[node.name] * node.merge_us
    return total


def _require_default_knobs(node: GraphNode, role: str) -> None:
    """Transforms refuse nodes with non-default per-node knobs: there is
    no faithful way to split a cache in two or decide which half of a
    merged tier keeps a batcher."""
    for attr, default in (
        ("lb", LbConfig()),
        ("batch", BatchConfig()),
        ("cache", CacheConfig()),
        ("control", ControlConfig()),
    ):
        if getattr(node, attr) != default:
            raise GraphError(
                f"{role} node {node.name!r} has a non-default {attr} config; "
                "granularity transforms require default per-node knobs"
            )
    if node.runtime is not None:
        raise GraphError(
            f"{role} node {node.name!r} pins a runtime config; granularity "
            "transforms require the builder's role default"
        )
    if node.replicas != 1:
        raise GraphError(
            f"{role} node {node.name!r} has replicas={node.replicas}; "
            "granularity transforms require unreplicated tiers"
        )


def merge_edge(graph: GraphConfig, src: str, dst: str) -> GraphConfig:
    """Absorb tier ``dst`` into its caller ``src`` (one fewer hop).

    The merged node is named ``src+dst``, pools both tiers' cores, and
    does ``dst``'s work in-process: its service/merge times grow by the
    edge fan-out times ``dst``'s, and ``dst``'s outgoing calls are
    lifted onto the merged node with their fan-outs multiplied by the
    merged edge's — so every surviving node's visits per query, and
    :func:`work_per_query`, are unchanged.

    Only a sync edge to a single-parent, unreplicated, default-knob,
    non-root ``dst`` merges; a terminal ``dst`` must not declare merge
    work (it never charges any).  Violations raise
    :class:`~repro.graph.config.GraphError`.
    """
    edge = next(
        (e for e in graph.edges if e.src == src and e.dst == dst), None
    )
    if edge is None:
        raise GraphError(f"graph {graph.name!r} has no edge {src}->{dst}")
    if edge.mode != "sync":
        raise GraphError(
            f"cannot merge async edge {src}->{dst}: a fire-and-forget side "
            "effect has no in-process equivalent"
        )
    if dst == graph.root:
        raise GraphError(f"cannot merge the root node {dst!r} into a caller")
    parents = [e for e in graph.edges if e.dst == dst]
    if len(parents) != 1:
        others = ", ".join(sorted(e.src for e in parents if e.src != src))
        raise GraphError(
            f"cannot merge {src}->{dst}: {dst!r} has other caller(s) "
            f"({others}) that would lose their callee"
        )
    src_node = graph.node(src)
    dst_node = graph.node(dst)
    _require_default_knobs(dst_node, "merge target")
    if src_node.replicas != 1:
        raise GraphError(
            f"merge caller {src!r} has replicas={src_node.replicas}; "
            "granularity transforms require unreplicated tiers"
        )
    dst_children = graph.children(dst)
    if not dst_children and dst_node.merge_us != 0.0:
        raise GraphError(
            f"cannot merge terminal {dst!r} with merge_us="
            f"{dst_node.merge_us}: a leaf never charges merge work, so "
            "folding it in would change work_per_query"
        )
    merged_name = f"{src}+{dst}"
    if any(node.name == merged_name for node in graph.nodes):
        raise GraphError(
            f"merged name {merged_name!r} collides with an existing node"
        )
    fanout = edge.fanout
    service_us = src_node.service_us + fanout * dst_node.service_us
    merge_us = src_node.merge_us + fanout * dst_node.merge_us
    # Rebuild edges in declaration order: drop the merged edge, rename
    # src endpoints, lift dst's calls (fan-out multiplied) in place.
    new_edges: List[GraphEdge] = []
    for e in graph.edges:
        if e is edge:
            continue
        if e.src == dst:
            new_edges.append(
                replace(e, src=merged_name, fanout=e.fanout * fanout)
            )
        elif e.src == src:
            new_edges.append(replace(e, src=merged_name))
        elif e.dst == src:
            new_edges.append(replace(e, dst=merged_name))
        else:
            new_edges.append(e)
    targets = [e.dst for e in new_edges if e.src == merged_name]
    dupes = sorted({t for t in targets if targets.count(t) > 1})
    if dupes:
        raise GraphError(
            f"cannot merge {src}->{dst}: both call {', '.join(dupes)}, and "
            "the lifted edges would duplicate the pair"
        )
    if not targets:
        # The merged tier is a leaf: its merge phase disappears from the
        # charged path, so fold it into service to keep work invariant.
        service_us += merge_us
        merge_us = 0.0
    merged = replace(
        src_node,
        name=merged_name,
        service_us=service_us,
        merge_us=merge_us,
        cores=src_node.cores + dst_node.cores,
    )
    new_nodes = tuple(
        merged if node.name == src else node
        for node in graph.nodes
        if node.name != dst
    )
    return replace(
        graph,
        nodes=new_nodes,
        edges=tuple(new_edges),
        root=merged_name if graph.root == src else graph.root,
    )


def split_node(graph: GraphConfig, name: str, ratio: float = 0.5) -> GraphConfig:
    """Cut tier ``name`` into ``name-front`` → ``name-back`` (one more hop).

    The front gets ``ratio`` of the service time and (about) ``ratio``
    of the cores and forwards every request to the back over a new sync
    edge; the back gets the exact remainder of the service time, the
    original merge work, and the original outgoing calls — so
    :func:`work_per_query` is unchanged (``split_node`` is a one-step
    inverse of :func:`merge_edge` up to naming).  Requires an
    unreplicated, default-knob node with at least 2 cores and
    ``0 < ratio < 1``.
    """
    if not 0.0 < ratio < 1.0:
        raise GraphError(f"split ratio must be in (0, 1): {ratio}")
    try:
        node = graph.node(name)
    except KeyError:
        raise GraphError(f"graph {graph.name!r} has no node {name!r}") from None
    _require_default_knobs(node, "split")
    if node.cores < 2:
        raise GraphError(
            f"cannot split {name!r} with cores={node.cores}: both halves "
            "need at least one core"
        )
    front_name, back_name = f"{name}-front", f"{name}-back"
    for candidate in (front_name, back_name):
        if any(n.name == candidate for n in graph.nodes):
            raise GraphError(
                f"split name {candidate!r} collides with an existing node"
            )
    front_cores = max(1, int(node.cores * ratio))
    back_cores = node.cores - front_cores
    front_service = node.service_us * ratio
    front = replace(
        node,
        name=front_name,
        service_us=front_service,
        merge_us=0.0,
        cores=front_cores,
    )
    back = replace(
        node,
        name=back_name,
        # Subtraction (not service_us * (1 - ratio)) so the two halves
        # sum back to the original exactly.
        service_us=node.service_us - front_service,
        cores=back_cores,
    )
    new_nodes: List[GraphNode] = []
    for existing in graph.nodes:
        if existing.name == name:
            new_nodes.extend((front, back))
        else:
            new_nodes.append(existing)
    new_edges: List[GraphEdge] = []
    for e in graph.edges:
        if e.dst == name:
            new_edges.append(replace(e, dst=front_name))
        elif e.src == name:
            new_edges.append(replace(e, src=back_name))
        else:
            new_edges.append(e)
    new_edges.append(GraphEdge(src=front_name, dst=back_name))
    return replace(
        graph,
        nodes=tuple(new_nodes),
        edges=tuple(new_edges),
        root=front_name if graph.root == name else graph.root,
    )


def coarsen_once(graph: GraphConfig) -> GraphConfig:
    """Merge the first mergeable edge in declaration order."""
    for edge in graph.edges:
        try:
            return merge_edge(graph, edge.src, edge.dst)
        except GraphError:
            continue
    raise GraphError(
        f"graph {graph.name!r} has no mergeable edge among "
        f"{len(graph.nodes)} node(s)"
    )


def monolith(graph: GraphConfig) -> GraphConfig:
    """Coarsen all the way to a single-tier deployment.

    Raises :class:`~repro.graph.config.GraphError` when the graph cannot
    fully merge (e.g. the socialnet exemplar's async analytics edge has
    no in-process equivalent).
    """
    current = graph
    while len(current.nodes) > 1:
        try:
            current = coarsen_once(current)
        except GraphError as err:
            remaining = ", ".join(node.name for node in current.nodes)
            raise GraphError(
                f"graph {graph.name!r} cannot merge to a monolith; stuck at "
                f"{len(current.nodes)} nodes ({remaining}): {err}"
            ) from None
    return current


__all__ = [
    "coarsen_once",
    "merge_edge",
    "monolith",
    "split_node",
    "work_per_query",
]
