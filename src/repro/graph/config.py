"""Frozen declarative configuration for service-graph DAGs.

A :class:`GraphConfig` names a DAG of RPC tiers: each :class:`GraphNode`
is one microserver (its synthetic service kernel, core count, replica
count, and the per-node batching / caching / load-balancing knobs from
the typed config tree), and each :class:`GraphEdge` is an RPC dependency
with a fan-out count and a sync vs. async (fire-and-forget) mode.
Validation happens at construction: duplicate nodes, dangling edge
endpoints, unreachable nodes, and — most importantly — cycles are all
rejected with errors that name the offending elements, so a bad graph
never reaches the builder.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.control.config import ControlConfig
from repro.rpc.server import RuntimeConfig
from repro.suite.config import BatchConfig, CacheConfig, LbConfig

#: Valid edge modes: "sync" edges are awaited and merged; "async" edges
#: are fire-and-forget side effects whose replies are dropped.
EDGE_MODES = ("sync", "async")


class GraphError(ValueError):
    """An invalid service graph (cycle, dangling edge, bad knob, ...)."""


@dataclass(frozen=True)
class GraphNode:
    """One tier of the graph: a microserver and its per-node knobs.

    Terminal nodes (no outgoing edges) become
    :class:`~repro.rpc.server.LeafRuntime`\\ s; internal nodes become
    :class:`~repro.rpc.server.MidTierRuntime`\\ s.  ``service_us`` is the
    mean request-path compute per visit (the synthetic kernel is a
    :class:`~repro.services.costmodel.LinearCost` calibrated against the
    workload's per-query work units); ``merge_us`` is the mean
    response-path merge compute, charged by internal nodes only.
    """

    name: str
    service_us: float = 50.0
    merge_us: float = 5.0
    cores: int = 2
    replicas: int = 1
    response_bytes: int = 64
    lb: LbConfig = field(default_factory=LbConfig)
    batch: BatchConfig = field(default_factory=BatchConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    # Closed-loop control for this node (internal nodes only); off by
    # default, constructing nothing.
    control: ControlConfig = field(default_factory=ControlConfig)
    # None picks the builder's role default (leaf vs. mid-tier pools).
    runtime: Optional[RuntimeConfig] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise GraphError("graph node needs a non-empty name")
        if self.service_us <= 0:
            raise GraphError(
                f"node {self.name!r}: service_us must be positive: {self.service_us}"
            )
        if self.merge_us < 0:
            raise GraphError(
                f"node {self.name!r}: merge_us must be >= 0: {self.merge_us}"
            )
        if self.cores < 1:
            raise GraphError(f"node {self.name!r}: cores must be >= 1: {self.cores}")
        if self.replicas < 1:
            raise GraphError(
                f"node {self.name!r}: replicas must be >= 1: {self.replicas}"
            )


@dataclass(frozen=True)
class GraphEdge:
    """One RPC dependency: ``src`` calls ``dst`` ``fanout`` times."""

    src: str
    dst: str
    fanout: int = 1
    mode: str = "sync"
    request_bytes: int = 96

    def __post_init__(self) -> None:
        if self.fanout < 1:
            raise GraphError(
                f"edge {self.src}->{self.dst}: fanout must be >= 1: {self.fanout}"
            )
        if self.mode not in EDGE_MODES:
            raise GraphError(
                f"edge {self.src}->{self.dst}: mode must be one of "
                f"{'/'.join(EDGE_MODES)}: {self.mode!r}"
            )


@dataclass(frozen=True)
class GraphConfig:
    """A validated service DAG plus its synthetic workload parameters.

    ``root`` is where clients send queries.  The workload is a cycling
    set of ``n_queries`` synthetic queries whose per-query work units are
    drawn uniformly from ``[units_low, units_high)`` on a named
    ``sim.rng`` stream, so every node's kernel sees genuine per-request
    variation while runs stay bit-reproducible.
    """

    name: str
    nodes: Tuple[GraphNode, ...]
    edges: Tuple[GraphEdge, ...]
    root: str
    request_bytes: int = 96
    n_queries: int = 2000
    units_low: float = 0.5
    units_high: float = 1.5

    def __post_init__(self) -> None:
        object.__setattr__(self, "nodes", tuple(self.nodes))
        object.__setattr__(self, "edges", tuple(self.edges))
        if not self.name:
            raise GraphError("graph needs a non-empty name")
        if self.n_queries < 1:
            raise GraphError(f"n_queries must be >= 1: {self.n_queries}")
        if not 0 < self.units_low <= self.units_high:
            raise GraphError(
                f"bad units range: [{self.units_low}, {self.units_high})"
            )
        self._validate_shape()

    # -- validation --------------------------------------------------------
    def _validate_shape(self) -> None:
        if not self.nodes:
            raise GraphError(f"graph {self.name!r} has no nodes")
        names = [node.name for node in self.nodes]
        seen: set = set()
        for name in names:
            if name in seen:
                raise GraphError(f"graph {self.name!r}: duplicate node {name!r}")
            seen.add(name)
        if self.root not in seen:
            raise GraphError(
                f"graph {self.name!r}: root {self.root!r} is not a node"
            )
        pairs: set = set()
        for edge in self.edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in seen:
                    raise GraphError(
                        f"graph {self.name!r}: edge {edge.src}->{edge.dst} "
                        f"references unknown node {endpoint!r}"
                    )
            if edge.src == edge.dst:
                raise GraphError(
                    f"graph {self.name!r}: self-edge on {edge.src!r}"
                )
            if (edge.src, edge.dst) in pairs:
                raise GraphError(
                    f"graph {self.name!r}: duplicate edge {edge.src}->{edge.dst} "
                    "(merge into one edge with a larger fanout)"
                )
            pairs.add((edge.src, edge.dst))
        cycle = self._find_cycle()
        if cycle is not None:
            raise GraphError(
                f"graph {self.name!r} has a cycle: {' -> '.join(cycle)} "
                "(service graphs must be DAGs)"
            )
        unreachable = [name for name in names if name not in self._reachable()]
        if unreachable:
            raise GraphError(
                f"graph {self.name!r}: node(s) unreachable from root "
                f"{self.root!r}: {', '.join(unreachable)}"
            )

    def _adjacency(self) -> Dict[str, List[GraphEdge]]:
        out: Dict[str, List[GraphEdge]] = {node.name: [] for node in self.nodes}
        for edge in self.edges:
            out[edge.src].append(edge)
        return out

    def _find_cycle(self) -> Optional[List[str]]:
        """A cycle as a node path (closed: first == last), or None."""
        adjacency = self._adjacency()
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {node.name: WHITE for node in self.nodes}
        stack: List[str] = []

        def visit(name: str) -> Optional[List[str]]:
            color[name] = GRAY
            stack.append(name)
            for edge in adjacency[name]:
                if color[edge.dst] == GRAY:
                    start = stack.index(edge.dst)
                    return stack[start:] + [edge.dst]
                if color[edge.dst] == WHITE:
                    found = visit(edge.dst)
                    if found is not None:
                        return found
            stack.pop()
            color[name] = BLACK
            return None

        for node in self.nodes:
            if color[node.name] == WHITE:
                found = visit(node.name)
                if found is not None:
                    return found
        return None

    def _reachable(self) -> set:
        adjacency = self._adjacency()
        seen = {self.root}
        frontier = [self.root]
        while frontier:
            name = frontier.pop()
            for edge in adjacency[name]:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    frontier.append(edge.dst)
        return seen

    # -- queries -----------------------------------------------------------
    def node(self, name: str) -> GraphNode:
        """The node named ``name``."""
        for node in self.nodes:
            if node.name == name:
                return node
        raise KeyError(name)

    def children(self, name: str) -> List[GraphEdge]:
        """Outgoing edges of ``name``, in declaration order."""
        return [edge for edge in self.edges if edge.src == name]

    def terminal_names(self) -> List[str]:
        """Nodes with no outgoing edges (the graph's leaves), in
        declaration order — the order fault plans index leaves by."""
        has_out = {edge.src for edge in self.edges}
        return [node.name for node in self.nodes if node.name not in has_out]

    def topological_order(self) -> List[str]:
        """Every node, parents strictly before children (Kahn's
        algorithm, declaration order among ready nodes)."""
        indegree = {node.name: 0 for node in self.nodes}
        for edge in self.edges:
            indegree[edge.dst] += 1
        order: List[str] = []
        ready = [name for name in indegree if indegree[name] == 0]
        adjacency = self._adjacency()
        while ready:
            name = ready.pop(0)
            order.append(name)
            for edge in adjacency[name]:
                indegree[edge.dst] -= 1
                if indegree[edge.dst] == 0:
                    ready.append(edge.dst)
        return order

    def depth(self) -> int:
        """Number of tiers: the longest root-to-leaf path, in nodes."""
        longest = {name: 1 for name in (node.name for node in self.nodes)}
        adjacency = self._adjacency()
        for name in self.topological_order():
            for edge in adjacency[name]:
                longest[edge.dst] = max(longest[edge.dst], longest[name] + 1)
        return max(longest[name] for name in self._reachable())

    def visits_per_query(self) -> Dict[str, float]:
        """Expected RPC visits per client query for every node — the
        product of edge fan-outs along each path, summed over paths."""
        visits = {node.name: 0.0 for node in self.nodes}
        visits[self.root] = 1.0
        adjacency = self._adjacency()
        for name in self.topological_order():
            for edge in adjacency[name]:
                visits[edge.dst] += visits[name] * edge.fanout
        return visits

    # -- round-trip serialization ------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """A plain-data dict that :meth:`from_dict` reconstructs exactly."""
        nodes = []
        for node in self.nodes:
            entry = asdict(node)
            if node.runtime is None:
                del entry["runtime"]
            if node.control == ControlConfig():
                # Default (disabled) control serializes as absence, keeping
                # pre-control graph dicts — and the committed artifacts
                # embedding them — byte-identical.
                del entry["control"]
            nodes.append(entry)
        return {
            "name": self.name,
            "root": self.root,
            "request_bytes": self.request_bytes,
            "n_queries": self.n_queries,
            "units_low": self.units_low,
            "units_high": self.units_high,
            "nodes": nodes,
            "edges": [asdict(edge) for edge in self.edges],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GraphConfig":
        """Rebuild a :class:`GraphConfig` from :meth:`to_dict` output."""
        nodes = []
        for entry in data["nodes"]:
            kwargs = dict(entry)
            for key, sub_type in (
                ("lb", LbConfig), ("batch", BatchConfig), ("cache", CacheConfig),
                ("control", ControlConfig), ("runtime", RuntimeConfig),
            ):
                if isinstance(kwargs.get(key), Mapping):
                    kwargs[key] = sub_type(**kwargs[key])
            nodes.append(GraphNode(**kwargs))
        edges = tuple(GraphEdge(**dict(entry)) for entry in data["edges"])
        return cls(
            name=data["name"],
            nodes=tuple(nodes),
            edges=edges,
            root=data["root"],
            request_bytes=data.get("request_bytes", 96),
            n_queries=data.get("n_queries", 2000),
            units_low=data.get("units_low", 0.5),
            units_high=data.get("units_high", 1.5),
        )


__all__ = [
    "EDGE_MODES",
    "GraphConfig",
    "GraphEdge",
    "GraphError",
    "GraphNode",
]
