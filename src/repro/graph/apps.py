"""Synthetic service kernels for graph nodes.

Graph queries are ``("gq", qid, units)`` tuples: ``qid`` identifies the
query (the workload cycles a fixed set, so per-node result caches can
hit), and ``units`` is the per-query work multiplier every node's
:class:`~repro.services.costmodel.LinearCost` kernel is charged against.
The same tuple propagates unchanged down every edge, so one query's work
is correlated across tiers — like a large request being large everywhere.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.graph.config import GraphEdge, GraphNode
from repro.rpc import FanoutPlan, LeafApp, LeafResult, MergeResult, MidTierApp
from repro.services.costmodel import LinearCost


class GraphLeafApp(LeafApp):
    """A terminal node: charge the kernel, echo a reply."""

    def __init__(self, node: GraphNode, cost: LinearCost):
        self.node = node
        self.cost = cost

    def handle(self, request) -> LeafResult:
        _tag, qid, units = request
        return LeafResult(
            compute_us=self.cost(units),
            payload=("gr", self.node.name, qid),
            size_bytes=self.node.response_bytes,
        )


class GraphNodeApp(MidTierApp):
    """An internal node: charge the kernel, fan out along every edge.

    ``children`` pairs each outgoing edge with its index into the
    runtime's ``leaf_addrs`` (the builder wires them in the same order).
    Sync edges become awaited sub-requests; async edges ride the plan's
    fire-and-forget list and never gate the merge.
    """

    def __init__(
        self,
        node: GraphNode,
        children: Sequence[Tuple[GraphEdge, int]],
        cost: LinearCost,
        merge_cost: LinearCost,
    ):
        self.node = node
        self.children = list(children)
        self.cost = cost
        self.merge_cost = merge_cost

    def fanout(self, query) -> FanoutPlan:
        _tag, qid, units = query
        sync: List[Tuple[int, object, int]] = []
        fire: List[Tuple[int, object, int]] = []
        for edge, child_index in self.children:
            bucket = sync if edge.mode == "sync" else fire
            for _ in range(edge.fanout):
                bucket.append((child_index, query, edge.request_bytes))
        return FanoutPlan(
            compute_us=self.cost(units),
            subrequests=sync,
            fire_and_forget=fire,
        )

    def merge(self, query, responses: Sequence[object]) -> MergeResult:
        _tag, qid, _units = query
        return MergeResult(
            compute_us=self.merge_cost(len(responses)),
            payload=("gr", self.node.name, qid),
            size_bytes=self.node.response_bytes,
        )

    def cache_key(self, query):
        if not self.node.cache.enabled:
            return None
        _tag, qid, _units = query
        return f"g:{self.node.name}:{qid}".encode()


__all__ = ["GraphLeafApp", "GraphNodeApp"]
