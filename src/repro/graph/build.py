"""Instantiate a :class:`~repro.graph.config.GraphConfig` on a cluster.

The builder walks the DAG in reverse topological order (children before
parents): terminal nodes become :class:`~repro.rpc.server.LeafRuntime`\\ s,
internal nodes become mid-tier runtimes whose ``leaf_addrs`` are their
children's front addresses — a child replicated N times sits behind its
own :class:`~repro.rpc.loadbalance.LoadBalancer`, exactly like the PR 3
scale-out path.  Per-node batching and result caching reuse the same
conversion :func:`~repro.suite.cluster.build_midtier_replicas` performs,
so a one-hop graph is wired identically to the existing suite services
(tests/test_graph.py pins this bit-for-bit).

Terminal nodes register with ``role="leaf"`` and a ``leaf_index`` equal
to their position in :meth:`GraphConfig.terminal_names`, so a
:class:`~repro.faults.FaultPlan` targets graph leaves the same way it
targets service leaves.  Internal nodes register with ``role="midtier"``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.control import Controller
from repro.graph.apps import GraphLeafApp, GraphNodeApp
from repro.graph.config import GraphConfig, GraphError, GraphNode
from repro.loadgen import CyclingSource
from repro.midcache import CacheConfig as MidCacheConfig
from repro.midcache import QueryCache
from repro.rpc.adaptive import make_midtier_runtime
from repro.rpc.batching import BatchConfig as RpcBatchConfig
from repro.rpc.loadbalance import LoadBalancer
from repro.rpc.server import LeafRuntime, RuntimeConfig
from repro.services.costmodel import LinearCost
from repro.suite.cluster import ServiceHandle, SimCluster

#: Role defaults when a node declares no explicit runtime config.
DEFAULT_LEAF_RUNTIME = RuntimeConfig(network_threads=1, worker_threads=3)
DEFAULT_NODE_RUNTIME = RuntimeConfig(
    network_threads=2, worker_threads=8, response_threads=4
)

#: Well-known ports, matching the suite's one-hop services.
MIDTIER_PORT = 40
LEAF_PORT = 50


def _batch_config(node: GraphNode) -> Optional[RpcBatchConfig]:
    if not node.batch.enabled:
        return None
    return RpcBatchConfig(
        max_batch=node.batch.max_batch, max_wait_us=node.batch.max_wait_us
    )


def _make_cache(node: GraphNode) -> Optional[QueryCache]:
    if not node.cache.enabled:
        return None
    return QueryCache(
        MidCacheConfig(
            capacity=node.cache.capacity,
            ttl_us=node.cache.ttl_us,
            policy=node.cache.policy,
        )
    )


def build_graph(
    cluster: SimCluster,
    graph: GraphConfig,
    name_prefix: Optional[str] = None,
    midtier_policy=None,
    tail_policy=None,
) -> ServiceHandle:
    """Wire one service-graph deployment onto ``cluster``.

    Returns a :class:`~repro.suite.cluster.ServiceHandle` whose mid-tier
    fields describe the root tier, so ``run_open_loop`` /
    ``run_closed_loop`` drive a graph exactly like a one-hop service.
    ``extras`` carries the graph, the per-node runtime map, and the
    terminal-name → fault ``leaf_index`` map.
    """
    prefix = name_prefix or graph.name
    terminals = graph.terminal_names()
    leaf_index = {name: i for i, name in enumerate(terminals)}

    # Synthetic workload: a fixed cycling query set with per-query work
    # units from a named stream (bit-reproducible; the same stream a
    # hand-built equivalent topology would draw).
    workload_rng = cluster.rng.py(f"{prefix}:workload")
    units = [
        workload_rng.uniform(graph.units_low, graph.units_high)
        for _ in range(graph.n_queries)
    ]
    query_set = [
        (("gq", qid, units[qid]), graph.request_bytes)
        for qid in range(graph.n_queries)
    ]

    # Children before parents, so every parent knows its targets.  Among
    # ready nodes, declaration order — so a one-hop graph provisions its
    # machines in exactly the order the suite services do (leaves first).
    outstanding = {node.name: len(graph.children(node.name)) for node in graph.nodes}
    build_order: List[str] = []
    ready = [node.name for node in graph.nodes if outstanding[node.name] == 0]
    while ready:
        built = ready.pop(0)
        build_order.append(built)
        for edge in graph.edges:
            if edge.dst == built:
                outstanding[edge.src] -= 1
                if outstanding[edge.src] == 0:
                    ready.append(edge.src)

    front_address: Dict[str, Tuple[str, int]] = {}
    runtimes: Dict[str, list] = {}
    machines: Dict[str, list] = {}
    frontends: Dict[str, LoadBalancer] = {}
    for name in build_order:
        node = graph.node(name)
        is_terminal = name in leaf_index
        use_control = node.control.enabled
        if use_control and is_terminal:
            raise GraphError(
                f"graph {graph.name!r}: terminal node {name!r} cannot be "
                "controlled (autoscaling actuates mid-tier runtimes only)"
            )
        # Controlled nodes provision the warm pool; the controller decides
        # how many of them admit (see suite.cluster.build_midtier_replicas
        # for the same convention).
        n_replicas = node.control.max_replicas if use_control else node.replicas
        if use_control and cluster.telemetry.windows is None:
            cluster.telemetry.enable_windows(
                node.control.window_us,
                prefixes=(
                    "e2e_latency", "midtier_latency:", "runqlat:", "ctrl_",
                ),
            )
        node_runtimes: list = []
        node_machines: list = []
        for replica in range(n_replicas):
            suffix = name if n_replicas == 1 else f"{name}{replica}"
            if is_terminal:
                machine = cluster.machine(
                    f"{prefix}-{suffix}", cores=node.cores,
                    role="leaf", leaf_index=leaf_index[name],
                )
                app = GraphLeafApp(
                    node, LinearCost.calibrated(node.service_us, units)
                )
                runtime = LeafRuntime(
                    machine, port=LEAF_PORT, app=app,
                    config=node.runtime or DEFAULT_LEAF_RUNTIME,
                )
            else:
                machine = cluster.machine(
                    f"{prefix}-{suffix}", cores=node.cores,
                    policy=midtier_policy, role="midtier",
                )
                edges = graph.children(name)
                app = GraphNodeApp(
                    node,
                    children=[(edge, i) for i, edge in enumerate(edges)],
                    cost=LinearCost.calibrated(node.service_us, units),
                    merge_cost=LinearCost.calibrated(
                        node.merge_us,
                        [sum(e.fanout for e in edges if e.mode == "sync") or 1],
                    ) if node.merge_us > 0 else LinearCost(0.0, 0.0),
                )
                runtime = make_midtier_runtime(
                    machine, port=MIDTIER_PORT, app=app,
                    leaf_addrs=[front_address[edge.dst] for edge in edges],
                    config=node.runtime or DEFAULT_NODE_RUNTIME,
                    tail_policy=tail_policy,
                    batch_config=_batch_config(node),
                    cache=_make_cache(node),
                )
            node_runtimes.append(runtime)
            node_machines.append(machine)
        if n_replicas > 1:
            frontend = LoadBalancer(
                cluster.sim, cluster.fabric, cluster.telemetry, cluster.rng,
                name=f"{prefix}-{name}-lb",
                replicas=[runtime.address for runtime in node_runtimes],
                policy=node.lb.policy,
                pool_size=node.lb.pool_size,
                initial_active=(
                    node.control.initial_replicas if use_control else None
                ),
            )
            frontends[name] = frontend
            front_address[name] = frontend.address
        else:
            front_address[name] = node_runtimes[0].address
        if use_control:
            controller = Controller(
                cluster.sim,
                cluster.telemetry,
                node.control,
                name=f"{prefix}-{name}-ctrl",
                runtimes=node_runtimes,
                lb=frontends.get(name),
                signals=[
                    f"midtier_latency:{machine.name}"
                    for machine in node_machines
                ],
                runq_machines=[machine.name for machine in node_machines],
            )
            cluster.controllers.append(controller)
            controller.start()
        runtimes[name] = node_runtimes
        machines[name] = node_machines

    leaves: List[LeafRuntime] = []
    for name in terminals:
        leaves.extend(runtimes[name])
    root_runtimes = runtimes[graph.root]
    return ServiceHandle(
        name=graph.name,
        midtier=root_runtimes[0],
        midtier_machine=machines[graph.root][0],
        leaves=leaves,
        make_source=lambda: CyclingSource(query_set),
        extras={
            "graph": graph,
            "prefix": prefix,
            "leaf_index": leaf_index,
            "runtimes": runtimes,
            "machines": machines,
            "frontends": frontends,
        },
        midtiers=root_runtimes,
        midtier_machines=machines[graph.root],
        frontend=frontends.get(graph.root),
    )


__all__ = [
    "DEFAULT_LEAF_RUNTIME",
    "DEFAULT_NODE_RUNTIME",
    "LEAF_PORT",
    "MIDTIER_PORT",
    "build_graph",
]
