"""Declarative service-graph DAGs on top of :mod:`repro.rpc`.

μSuite's four services are all one-hop mid-tier fan-outs, but the
paper's thesis — OS and network overheads compound along the request
path — bites hardest in deep graphs (DeathStarBench, arXiv:1905.11055).
This package lets an experiment declare an arbitrary DAG of RPC tiers
(:class:`GraphConfig`), then instantiates it with the existing runtimes:
internal nodes become :class:`~repro.rpc.server.MidTierRuntime`\\ s that
fan out to their children, terminal nodes become
:class:`~repro.rpc.server.LeafRuntime`\\ s, and the PR 3 load balancer,
PR 4 batching/result cache, and PR 5 trace stamps all compose per node.
"""

from repro.graph.build import build_graph
from repro.graph.config import (
    EDGE_MODES,
    GraphConfig,
    GraphEdge,
    GraphError,
    GraphNode,
)
from repro.graph.exemplar import exemplar_graph, onehop_graph, pipeline_graph
from repro.graph.granularity import (
    coarsen_once,
    merge_edge,
    monolith,
    split_node,
    work_per_query,
)

__all__ = [
    "EDGE_MODES",
    "GraphConfig",
    "GraphEdge",
    "GraphError",
    "GraphNode",
    "build_graph",
    "coarsen_once",
    "exemplar_graph",
    "merge_edge",
    "monolith",
    "onehop_graph",
    "pipeline_graph",
    "split_node",
    "work_per_query",
]
