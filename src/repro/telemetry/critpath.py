"""Per-request critical-path attribution.

:mod:`repro.experiments.fig15_18_os_overheads` reproduces the paper's
*aggregate* OS-overhead breakdown: summed histograms of softirq service,
runqueue wait, and wire time across a whole run.  This module answers
the per-request question — where did THIS query's tail latency go? — by
joining two streams recorded on a sampled :class:`~repro.telemetry.tracing.Trace`:

* application spans (``leaf:*`` service time, ``queue_wait`` dwell,
  ``request_path``/``response_path`` mid-tier compute), and
* kernel-event :class:`~repro.telemetry.tracing.Segment`\\ s stamped by the
  NIC pipeline and scheduler (hardirq + net_rx softirq service, net_tx
  softirq, runqueue wait after a message-driven wake, wire time, balancer
  backlog dwell).

The join produces an exact *tiling* of the request's wall-clock interval
``[started_us, finished_us]``: a boundary sweep cuts the interval at every
segment edge and assigns each elementary slice to the highest-priority
category covering it.  Slices no candidate covers become ``app_compute``
(client-side think/parse time and untracked residue).  By construction the
per-category durations sum to the round trip exactly — no gaps, no
overlaps — which the property tests in ``tests/test_critpath.py`` enforce.

Hedged or retried sub-requests are filtered to the winning path: the
mid-tier notes which sub-request ids actually contributed to the merged
reply (:meth:`Trace.note_winner`), and intervals tagged with a losing id
are dropped before tiling.

Priority (high → low) when intervals overlap::

    hardirq > net_rx > net_tx > active_exe > queue_dwell > net
            > leaf_compute > app_compute

Kernel service preempts everything it interrupts; runqueue wait hides
under softirq service on the same core; wire time is the weakest claim
because endpoint work overlapping "the network" is still endpoint work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.telemetry.tracing import Trace

#: Attribution categories, strongest claim first.  Every microsecond of a
#: sampled request's round trip lands in exactly one of these.
CATEGORIES: Tuple[str, ...] = (
    "hardirq",
    "net_rx",
    "net_tx",
    "active_exe",
    "queue_dwell",
    "net",
    "leaf_compute",
    "app_compute",
)

_PRIORITY: Dict[str, int] = {name: rank for rank, name in enumerate(CATEGORIES)}

#: Span names translated into tiling candidates (category, priority source).
_SPAN_CATEGORIES: Dict[str, str] = {
    "queue_wait": "queue_dwell",
    "request_path": "app_compute",
    "response_path": "app_compute",
    "cache_hit": "app_compute",
    "single_flight": "app_compute",
}


def riders(message) -> Tuple[Tuple[Trace, Optional[int]], ...]:
    """The sampled traces riding on a wire message, with sub-request ids.

    Duck-typed so the kernel layer never imports :mod:`repro.rpc`: a plain
    request/response exposes ``.trace``/``.request_id``; a batch envelope
    or reply hides traced sub-messages under ``.payload.subrequests`` /
    ``.payload.responses``.  A batched event is amortized across its
    sub-requests, so each distinct trace is returned once (first rider's
    id wins).  Untraced messages return ``()``.
    """
    trace = getattr(message, "trace", None)
    payload = getattr(message, "payload", None)
    subs = getattr(payload, "subrequests", None)
    if subs is None:
        subs = getattr(payload, "responses", None)
    if subs is None:
        if trace is None:
            return ()
        return ((trace, getattr(message, "request_id", None)),)
    found: List[Tuple[Trace, Optional[int]]] = []
    seen = set()
    if trace is not None:
        found.append((trace, getattr(message, "request_id", None)))
        seen.add(id(trace))
    for sub in subs:
        sub_trace = getattr(sub, "trace", None)
        if sub_trace is not None and id(sub_trace) not in seen:
            seen.add(id(sub_trace))
            found.append((sub_trace, getattr(sub, "request_id", None)))
    return tuple(found)


@dataclass
class Attribution:
    """Exact decomposition of one request's round trip.

    ``categories`` tiles ``total_us`` exactly; ``by_machine`` splits the
    same microseconds per ``(machine, category)`` with the residual under
    machine ``"-"``.  ``raw`` keeps unclipped, unfiltered kernel-segment
    sums for aggregate cross-checks against telemetry histograms.
    """

    request_id: int
    total_us: float
    categories: Dict[str, float] = field(default_factory=dict)
    by_machine: Dict[Tuple[str, str], float] = field(default_factory=dict)
    raw: Dict[str, float] = field(default_factory=dict)

    @property
    def dominant(self) -> str:
        """Category with the largest attributed share."""
        return max(CATEGORIES, key=lambda c: self.categories.get(c, 0.0))

    @property
    def tiling_error_us(self) -> float:
        """|sum(categories) - total_us| — zero by construction."""
        return abs(sum(self.categories.values()) - self.total_us)

    def share(self, category: str) -> float:
        if self.total_us <= 0.0:
            return 0.0
        return self.categories.get(category, 0.0) / self.total_us


def _keep(trace: Trace, request_id: Optional[int]) -> bool:
    """Winner filter: drop intervals tagged with a losing hedge/retry id."""
    if request_id is None or request_id == trace.request_id:
        return True
    if not trace.winners:
        return True  # no hedging happened; every sub-request "won"
    return request_id in trace.winners


def _candidates(trace: Trace) -> List[Tuple[int, str, str, float, float]]:
    """(priority, category, machine, start, end) intervals for tiling."""
    out: List[Tuple[int, str, str, float, float]] = []
    for seg in trace.segments:
        if not _keep(trace, seg.request_id):
            continue
        out.append(
            (_PRIORITY[seg.category], seg.category, seg.machine,
             seg.start_us, seg.end_us)
        )
    for span in trace.spans:
        if span.end_us is None or not _keep(trace, span.request_id):
            continue
        if span.name.startswith("leaf:"):
            category = "leaf_compute"
        else:
            category = _SPAN_CATEGORIES.get(span.name)
            if category is None:
                continue
        out.append(
            (_PRIORITY[category], category, span.machine,
             span.start_us, span.end_us)
        )
    return out


def attribute(trace: Trace) -> Attribution:
    """Tile a finished trace's round trip into :data:`CATEGORIES`.

    Raises ``ValueError`` on an unfinished trace.  The returned
    :class:`Attribution` satisfies ``sum(categories) == total_us`` exactly
    (floating error only from summing the identical boundary arithmetic).
    """
    if trace.finished_us is None:
        raise ValueError(f"trace #{trace.request_id} is not finished")
    lo, hi = trace.started_us, trace.finished_us
    attr = Attribution(request_id=trace.request_id, total_us=hi - lo)

    for seg in trace.segments:  # unclipped diagnostics for cross-checks
        attr.raw[seg.category] = attr.raw.get(seg.category, 0.0) + seg.duration_us

    candidates = [
        (prio, cat, machine, max(lo, start), min(hi, end))
        for prio, cat, machine, start, end in _candidates(trace)
        if min(hi, end) > max(lo, start)
    ]
    boundaries = {lo, hi}
    for _, _, _, start, end in candidates:
        boundaries.add(start)
        boundaries.add(end)
    cuts = sorted(boundaries)

    for left, right in zip(cuts, cuts[1:]):
        best: Optional[Tuple[int, str, str]] = None
        for prio, cat, machine, start, end in candidates:
            if start <= left and end >= right:
                if best is None or prio < best[0]:
                    best = (prio, cat, machine)
        if best is None:
            cat, machine = "app_compute", "-"
        else:
            _, cat, machine = best
        width = right - left
        attr.categories[cat] = attr.categories.get(cat, 0.0) + width
        key = (machine, cat)
        attr.by_machine[key] = attr.by_machine.get(key, 0.0) + width
    return attr


def aggregate(attributions: Iterable[Attribution]) -> Dict[str, float]:
    """Summed µs per category across many per-request attributions."""
    totals: Dict[str, float] = {name: 0.0 for name in CATEGORIES}
    for attr in attributions:
        for name, us in attr.categories.items():
            totals[name] += us
    return totals


def tail_exemplars(traces: Sequence[Trace], k: int = 5) -> List[Dict[str, object]]:
    """The ``k`` slowest finished traces with their dominant category.

    Ties on total latency break by request id so exemplar mining is
    deterministic across runs.
    """
    finished = [t for t in traces if t.finished_us is not None]
    finished.sort(key=lambda t: (-(t.finished_us - t.started_us), t.request_id))
    out: List[Dict[str, object]] = []
    for trace in finished[: max(0, k)]:
        attr = attribute(trace)
        out.append(
            {
                "request_id": attr.request_id,
                "total_us": attr.total_us,
                "dominant": attr.dominant,
                "categories": {
                    name: attr.categories.get(name, 0.0) for name in CATEGORIES
                },
            }
        )
    return out


def crosscheck(
    traces: Sequence[Trace],
    telemetry,
    machines: Sequence[str],
) -> Dict[str, Dict[str, float]]:
    """Aggregate consistency between per-request stamps and telemetry.

    For each softirq category the per-trace (unclipped) segment sums over
    ``machines`` are compared against the run's interrupt histograms — the
    same numbers :mod:`~repro.experiments.fig15_18_os_overheads` plots.
    ``active_exe`` is compared against the telemetry ``attributed``
    channel, which records the identical microseconds at the stamping
    site, and additionally reported as coverage of the full runqueue-wait
    histogram (always < 1: idle-timeout re-wakes are real runqueue waits
    that no request caused).

    Returns ``{category: {"trace_us", "telemetry_us", "rel_err"}}`` plus
    an ``"active_exe_runqlat"`` entry whose ``rel_err`` is the coverage
    shortfall rather than a tolerance violation.
    """
    trace_sums: Dict[str, float] = {name: 0.0 for name in CATEGORIES}
    for trace in traces:
        for seg in trace.segments:
            if seg.machine in machines:
                trace_sums[seg.category] += seg.duration_us

    def entry(category: str, telemetry_us: float) -> Dict[str, float]:
        trace_us = trace_sums[category]
        denom = max(telemetry_us, 1e-9)
        return {
            "trace_us": trace_us,
            "telemetry_us": telemetry_us,
            "rel_err": abs(trace_us - telemetry_us) / denom,
        }

    report: Dict[str, Dict[str, float]] = {}
    for kind in ("hardirq", "net_rx", "net_tx"):
        total = sum(telemetry.irq_hist(m, kind).total for m in machines)
        report[kind] = entry(kind, total)
    attributed = sum(
        telemetry.attributed_total(m, "active_exe") for m in machines
    )
    report["active_exe"] = entry("active_exe", attributed)
    runqlat = sum(telemetry.runqlat_hist(m).total for m in machines)
    report["active_exe_runqlat"] = entry("active_exe", runqlat)
    return report
