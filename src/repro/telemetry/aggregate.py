"""Post-mortem aggregation of a telemetry JSONL stream.

:func:`fold_stream` replays a stream written by
:class:`~repro.telemetry.stream.StreamingTelemetry` into a fresh
buffered :class:`~repro.telemetry.probes.Telemetry`, reproducing the
in-memory structures bit-for-bit (see the determinism contract in
:mod:`repro.telemetry.stream`): histogram samples replay in record
order through the same seeded reservoir, ``attributed`` sums re-run
every floating-point addition in the original order, and ``open``
markers re-apply the warm-up trim at exactly the record the buffered
hub applied it.

Streams are validated structurally: a header must come first, every
line must parse, and the ``end`` footer must be present with matching
window/sample counts — a truncated or tampered stream raises
:class:`StreamError` instead of folding to silently wrong aggregates.

Run as ``python -m repro.telemetry.aggregate STREAM`` to fold a stream
and print its summary JSON; exit code 2 flags a malformed stream.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict, List, Optional

from repro.telemetry.histogram import LatencyHistogram
from repro.telemetry.probes import IRQ_KINDS, Telemetry
from repro.telemetry.stream import STREAM_VERSION


class StreamError(ValueError):
    """The stream is malformed, truncated, or fails integrity checks."""


def _fail(line_no: int, detail: str) -> None:
    raise StreamError(f"line {line_no}: {detail}")


def fold_stream(
    path: str, reservoir_size: Optional[int] = None
) -> Telemetry:
    """Fold one JSONL stream back into a buffered :class:`Telemetry`.

    ``reservoir_size`` overrides the header's recorded size (callers
    replaying into a differently-sized reservoir lose bit-identity, so
    the default — the header value — is almost always right).
    """
    with open(path, "r", encoding="utf-8") as stream:
        lines = stream.read().splitlines()
    if not lines:
        raise StreamError("empty stream: missing header")

    records = []
    for line_no, line in enumerate(lines, start=1):
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as err:
            _fail(line_no, f"malformed JSON: {err}")
        if not isinstance(records[-1], dict) or "t" not in records[-1]:
            _fail(line_no, "record is not an object with a 't' kind")

    header = records[0]
    if header["t"] != "header":
        _fail(1, f"expected header record, got {header['t']!r}")
    if header.get("version") != STREAM_VERSION:
        _fail(1, f"unsupported stream version: {header.get('version')!r}")
    if reservoir_size is None:
        reservoir_size = int(header["reservoir_size"])

    footer = records[-1]
    if footer["t"] != "end":
        raise StreamError(
            "truncated stream: missing 'end' footer (the run did not "
            "reach finalized())"
        )

    out = Telemetry(reservoir_size=reservoir_size)
    windows_seen = 0
    samples_seen = 0
    for line_no, record in enumerate(records[1:-1], start=2):
        kind = record["t"]
        if kind == "open":
            out.open_window(float(record["start"]))
            continue
        if kind == "end":
            _fail(line_no, "'end' footer before the last line")
        if kind != "w":
            _fail(line_no, f"unknown record kind {kind!r}")
        windows_seen += 1
        for machine, counts in record.get("syscalls", {}).items():
            per_machine = out.syscalls.get(machine)
            if per_machine is None:
                per_machine = out.syscalls[machine] = Counter()
            for name, n in counts.items():
                per_machine[name] += n
        for machine, values in record.get("runqlat", {}).items():
            hist = out.runqlat.get(machine)
            if hist is None:
                hist = out.runqlat[machine] = LatencyHistogram(
                    reservoir_size
                )
            hist.extend(values)
            samples_seen += len(values)
        for machine, kinds in record.get("irq", {}).items():
            for kind_name, values in kinds.items():
                if kind_name not in IRQ_KINDS:
                    _fail(line_no, f"unknown irq kind {kind_name!r}")
                key = (machine, kind_name)
                hist = out.irq_latency.get(key)
                if hist is None:
                    hist = out.irq_latency[key] = LatencyHistogram(
                        reservoir_size
                    )
                hist.extend(values)
                samples_seen += len(values)
        for machine, n in record.get("ctx", {}).items():
            out.context_switches[machine] += n
        for machine, n in record.get("hitm", {}).items():
            out.hitm[machine] += n
        for machine, n in record.get("hitm_remote", {}).items():
            out.hitm_remote[machine] += n
        out.retransmissions += record.get("retrans", 0)
        for machine, n in record.get("futex", {}).items():
            out.futex_contended_wakes[machine] += n
        for machine, categories in record.get("attributed", {}).items():
            for category, values in categories.items():
                key = (machine, category)
                for us in values:
                    # One addition per recorded value, in record order:
                    # float addition is not associative, so folding a
                    # subtotal first would drift from the buffered sum.
                    out.attributed[key] = out.attributed.get(key, 0.0) + us
                    out.attributed_counts[key] += 1
                samples_seen += len(values)
        for name, values in record.get("hist", {}).items():
            out.hist(name).extend(values)
            samples_seen += len(values)
        for name, n in record.get("counters", {}).items():
            out.counters[name] += n
        for t, label in record.get("events", ()):
            out.events.append((t, label))
            samples_seen += 1

    if footer.get("windows") != windows_seen:
        raise StreamError(
            f"integrity: footer says {footer.get('windows')} windows, "
            f"stream holds {windows_seen}"
        )
    if footer.get("samples") != samples_seen:
        raise StreamError(
            f"integrity: footer says {footer.get('samples')} samples, "
            f"stream holds {samples_seen}"
        )
    return out


def summarize(telemetry: Telemetry) -> Dict[str, object]:
    """A JSON-ready whole-run summary of a folded stream."""
    return {
        "window_start": telemetry.window_start,
        "histograms": {
            name: hist.summary()
            for name, hist in sorted(telemetry.histograms.items())
        },
        "runqlat": {
            machine: hist.summary()
            for machine, hist in sorted(telemetry.runqlat.items())
        },
        "irq": {
            f"{machine}:{kind}": hist.summary()
            for (machine, kind), hist in sorted(telemetry.irq_latency.items())
        },
        "syscalls": {
            machine: dict(sorted(counts.items()))
            for machine, counts in sorted(telemetry.syscalls.items())
        },
        "counters": dict(sorted(telemetry.counters.items())),
        "context_switches": dict(sorted(telemetry.context_switches.items())),
        "hitm": dict(sorted(telemetry.hitm.items())),
        "hitm_remote": dict(sorted(telemetry.hitm_remote.items())),
        "futex_contended_wakes": dict(
            sorted(telemetry.futex_contended_wakes.items())
        ),
        "retransmissions": telemetry.retransmissions,
        "attributed_us": {
            f"{machine}:{category}": us
            for (machine, category), us in sorted(telemetry.attributed.items())
        },
        "events": len(telemetry.events),
    }


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.telemetry.aggregate",
        description="Fold a streaming-telemetry JSONL stream into the "
        "whole-run summary the buffered pipeline would have produced.",
    )
    parser.add_argument("stream", help="path to the JSONL telemetry stream")
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the summary JSON here instead of stdout",
    )
    args = parser.parse_args(argv)
    try:
        telemetry = fold_stream(args.stream)
    except OSError as err:
        print(f"aggregate: error: cannot read {args.stream}: {err}")
        return 2
    except StreamError as err:
        print(f"aggregate: error: {args.stream}: {err}")
        return 2
    text = json.dumps(summarize(telemetry), indent=2, sort_keys=True)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as out:
            out.write(text + "\n")
        print(f"folded {args.stream} -> {args.output}")
    else:
        print(text)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    import sys

    sys.exit(main())


__all__ = ["StreamError", "fold_stream", "main", "summarize"]
