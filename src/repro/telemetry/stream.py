"""Streaming telemetry: windowed probe deltas spilled to a JSONL stream.

:class:`StreamingTelemetry` is a drop-in :class:`~repro.telemetry.probes.Telemetry`
that does *not* aggregate in memory.  Each probe sample lands in a
per-window pending buffer; when the simulation clock crosses a window
boundary the buffer is appended to an on-disk JSONL stream (the
Prometheus-style collect/ingest split) and evicted, so resident
telemetry memory is O(windows retained), not O(requests).

The determinism contract — streaming aggregates bit-identical to the
buffered path at the same seed — rests on three invariants:

* **Raw values, never subtotals.**  Window records carry the raw
  per-window sample lists.  Replaying them in stream order reproduces
  every floating-point addition (histogram totals, critical-path
  ``attributed`` sums) in the buffered order, and drives each
  histogram's reservoir RNG through exactly the same sequence.
* **Order preservation.**  The simulation clock is monotone, so every
  sample of window *k* is flushed before any sample of window *k+1*;
  concatenating the per-window lists is the original record order.
* **Marker-based warm-up trim.**  ``open_window`` is an explicit
  ``open`` record, flushed *after* the pending window.  The fold resets
  its state at the marker — discarding everything recorded before the
  call, exactly like the buffered hub, including samples whose
  timestamp equals the new window start (a timestamp-based gate would
  misclassify those).

``finalized()`` flushes, writes the integrity footer, folds the stream
back through :func:`repro.telemetry.aggregate.fold_stream`, and adopts
the folded structures *in place* — so every existing post-run reader of
``cluster.telemetry`` works unchanged in both modes.
"""

from __future__ import annotations

import json
import os
import tempfile
from collections import Counter
from typing import Dict, List, Optional, Tuple

from repro.telemetry.probes import IRQ_KINDS, Telemetry

#: Stream format version, recorded in the header.
STREAM_VERSION = 1

#: Windows the live control-plane tee retains per series in streaming
#: mode.  The controller reads back one ``window_us`` (two windows at
#: window granularity); 64 leaves generous slack for any future reader
#: while keeping the tee O(1) in run length.
RETAIN_TEE_WINDOWS = 64


def _dumps(record: dict) -> str:
    # Compact separators; float repr round-trips every IEEE double
    # exactly, so the fold sees bit-equal values.
    return json.dumps(record, separators=(",", ":"))


class StreamingTelemetry(Telemetry):
    """Bounded-memory telemetry spilling windowed deltas to JSONL."""

    def __init__(
        self,
        reservoir_size: int = 100_000,
        window_us: float = 10_000.0,
        spill_path: Optional[str] = None,
    ):
        super().__init__(reservoir_size=reservoir_size)
        if not window_us > 0:
            raise ValueError(f"window_us must be positive: {window_us}")
        self.window_us = float(window_us)
        self._owns_spill = spill_path is None
        if spill_path is None:
            fd, path = tempfile.mkstemp(
                suffix=".jsonl", prefix="telemetry-stream-"
            )
            self.spill_path = path
            self._file = os.fdopen(fd, "w", encoding="utf-8")
        else:
            self.spill_path = str(spill_path)
            self._file = open(self.spill_path, "w", encoding="utf-8")
        self._file.write(_dumps({
            "t": "header",
            "version": STREAM_VERSION,
            "window_us": self.window_us,
            "reservoir_size": self.reservoir_size,
        }) + "\n")
        self._pending_index: Optional[int] = None
        self._windows_flushed = 0
        self._samples_streamed = 0
        #: Raw samples currently pending (the quantity flushing bounds).
        self.pending_samples = 0
        #: Peak of ``pending_samples`` over the run — the probe the
        #: bounded-memory regression test asserts on.
        self.high_water_samples = 0
        self._sealed = False
        self._reset_pending()

    # -- pending-window buffers -------------------------------------------
    def _reset_pending(self) -> None:
        self._p_syscalls: Dict[str, Counter] = {}
        self._p_runqlat: Dict[str, List[float]] = {}
        self._p_irq: Dict[str, Dict[str, List[float]]] = {}
        self._p_ctx: Counter = Counter()
        self._p_hitm: Counter = Counter()
        self._p_hitm_remote: Counter = Counter()
        self._p_retrans = 0
        self._p_futex: Counter = Counter()
        self._p_attributed: Dict[str, Dict[str, List[float]]] = {}
        self._p_hists: Dict[str, List[float]] = {}
        self._p_counters: Counter = Counter()
        self._p_events: List[Tuple[float, str]] = []
        self.pending_samples = 0

    def _pending_empty(self) -> bool:
        return not (
            self._p_syscalls or self._p_runqlat or self._p_irq
            or self._p_ctx or self._p_hitm or self._p_hitm_remote
            or self._p_retrans or self._p_futex or self._p_attributed
            or self._p_hists or self._p_counters or self._p_events
        )

    def _note_sample(self, n: int = 1) -> None:
        self.pending_samples += n
        if self.pending_samples > self.high_water_samples:
            self.high_water_samples = self.pending_samples

    def _roll(self, now: float) -> None:
        """Flush the pending window when ``now`` has crossed into a new
        one.  The simulation clock is monotone, so a flushed window never
        receives another sample."""
        idx = int(now // self.window_us)
        if self._pending_index is None:
            self._pending_index = idx
        elif idx != self._pending_index:
            self._flush()
            self._pending_index = idx

    def _flush(self) -> None:
        if self._pending_index is None or self._pending_empty():
            return
        idx = self._pending_index
        record: Dict[str, object] = {
            "t": "w",
            "i": idx,
            "start_us": idx * self.window_us,
            "end_us": (idx + 1) * self.window_us,
        }
        if self._p_syscalls:
            record["syscalls"] = {
                machine: dict(counts)
                for machine, counts in self._p_syscalls.items()
            }
        if self._p_runqlat:
            record["runqlat"] = self._p_runqlat
            self._samples_streamed += sum(
                len(v) for v in self._p_runqlat.values()
            )
        if self._p_irq:
            record["irq"] = self._p_irq
            self._samples_streamed += sum(
                len(v) for kinds in self._p_irq.values()
                for v in kinds.values()
            )
        if self._p_ctx:
            record["ctx"] = dict(self._p_ctx)
        if self._p_hitm:
            record["hitm"] = dict(self._p_hitm)
        if self._p_hitm_remote:
            record["hitm_remote"] = dict(self._p_hitm_remote)
        if self._p_retrans:
            record["retrans"] = self._p_retrans
        if self._p_futex:
            record["futex"] = dict(self._p_futex)
        if self._p_attributed:
            record["attributed"] = self._p_attributed
            self._samples_streamed += sum(
                len(v) for cats in self._p_attributed.values()
                for v in cats.values()
            )
        if self._p_hists:
            record["hist"] = self._p_hists
            self._samples_streamed += sum(
                len(v) for v in self._p_hists.values()
            )
        if self._p_counters:
            record["counters"] = dict(self._p_counters)
        if self._p_events:
            record["events"] = [[t, label] for t, label in self._p_events]
            self._samples_streamed += len(self._p_events)
        self._file.write(_dumps(record) + "\n")
        self._windows_flushed += 1
        self._reset_pending()

    # -- lifecycle ---------------------------------------------------------
    def enable_windows(self, width_us: float, prefixes=()) -> None:
        """Same tee as the buffered hub, but with bounded retention —
        the controller only ever reads the most recent window_us."""
        from repro.telemetry.windows import WindowedMetrics

        self.windows = WindowedMetrics(
            width_us, prefixes, retain_windows=RETAIN_TEE_WINDOWS
        )

    def open_window(self, start: float) -> None:
        """Warm-up trim: flush what was recorded so far, then mark the
        stream so the fold discards it — everything recorded *before
        this call*, regardless of timestamp, exactly like the buffered
        ``open_window``."""
        if self._sealed:
            super().open_window(start)
            return
        self._flush()
        self._pending_index = None
        self._file.write(_dumps({"t": "open", "start": start}) + "\n")
        self.window_start = start

    def finalized(self) -> Telemetry:
        """Flush, footer, fold, and adopt the folded aggregates in place.

        Returns ``self`` so existing post-run readers of
        ``cluster.telemetry`` see exactly the buffered structures.
        """
        if self._sealed:
            return self
        from repro.telemetry.aggregate import fold_stream

        self._flush()
        self._file.write(_dumps({
            "t": "end",
            "windows": self._windows_flushed,
            "samples": self._samples_streamed,
        }) + "\n")
        self._file.close()
        folded = fold_stream(
            self.spill_path, reservoir_size=self.reservoir_size
        )
        self.syscalls = folded.syscalls
        self.runqlat = folded.runqlat
        self.irq_latency = folded.irq_latency
        self.context_switches = folded.context_switches
        self.hitm = folded.hitm
        self.hitm_remote = folded.hitm_remote
        self.retransmissions = folded.retransmissions
        self.futex_contended_wakes = folded.futex_contended_wakes
        self.attributed = folded.attributed
        self.attributed_counts = folded.attributed_counts
        self.histograms = folded.histograms
        self.counters = folded.counters
        self.events = folded.events
        self._sealed = True
        if self._owns_spill:
            os.unlink(self.spill_path)
        return self

    def close(self) -> None:
        """Idempotent cleanup for runs abandoned before ``finalized()``
        (a truncated stream: no footer, rejected by the aggregator)."""
        if not self._file.closed:
            self._file.close()
            if self._owns_spill and os.path.exists(self.spill_path):
                os.unlink(self.spill_path)

    # -- kernel probes (same gates as the buffered hub, buffered per
    # -- window instead of aggregated; after finalized() they fall back to
    # -- the base implementation so late writes behave exactly buffered) --
    def count_syscall(self, machine: str, name: str) -> None:
        if self._sealed:
            return super().count_syscall(machine, name)
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if now < self.window_start:
            return
        self._roll(now)
        per_machine = self._p_syscalls.get(machine)
        if per_machine is None:
            per_machine = Counter()
            self._p_syscalls[machine] = per_machine
        per_machine[name] += 1

    def record_runqlat(self, machine: str, latency_us: float) -> None:
        if self._sealed:
            return super().record_runqlat(machine, latency_us)
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        # The tee sits before the warm-up gate, as in the buffered hub:
        # the controller must see warm-up load.
        if self.windows is not None:
            self.windows.observe(f"runqlat:{machine}", now, latency_us)
        if now < self.window_start:
            return
        self._roll(now)
        self._p_runqlat.setdefault(machine, []).append(latency_us)
        self._note_sample()

    def record_irq(self, machine: str, kind: str, latency_us: float) -> None:
        if kind not in IRQ_KINDS:
            raise ValueError(f"unknown irq kind: {kind}")
        if self._sealed:
            return super().record_irq(machine, kind, latency_us)
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if now < self.window_start:
            return
        self._roll(now)
        self._p_irq.setdefault(machine, {}).setdefault(kind, []).append(
            latency_us
        )
        self._note_sample()

    def count_context_switch(self, machine: str) -> None:
        if self._sealed:
            return super().count_context_switch(machine)
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if now >= self.window_start:
            self._roll(now)
            self._p_ctx[machine] += 1

    def count_hitm(self, machine: str, n: int = 1, remote: bool = False) -> None:
        if self._sealed:
            return super().count_hitm(machine, n, remote)
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if now >= self.window_start:
            self._roll(now)
            self._p_hitm[machine] += n
            if remote:
                self._p_hitm_remote[machine] += n

    def count_retransmission(self) -> None:
        if self._sealed:
            return super().count_retransmission()
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if now >= self.window_start:
            self._roll(now)
            self._p_retrans += 1

    def count_contended_wake(self, machine: str) -> None:
        if self._sealed:
            return super().count_contended_wake(machine)
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if now >= self.window_start:
            self._roll(now)
            self._p_futex[machine] += 1

    def record_attributed(self, machine: str, category: str, us: float) -> None:
        if self._sealed:
            return super().record_attributed(machine, category, us)
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if now < self.window_start:
            return
        self._roll(now)
        self._p_attributed.setdefault(machine, {}).setdefault(
            category, []
        ).append(us)
        self._note_sample()

    # -- generic extension probes ----------------------------------------
    def record(self, name: str, value: float) -> None:
        if self._sealed:
            return super().record(name, value)
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if self.windows is not None:
            self.windows.observe(name, now, value)
        if now >= self.window_start:
            self._roll(now)
            self._p_hists.setdefault(name, []).append(value)
            self._note_sample()

    def incr(self, name: str, n: int = 1) -> None:
        if self._sealed:
            return super().incr(name, n)
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if now >= self.window_start:
            self._roll(now)
            self._p_counters[name] += n

    def mark(self, label: str) -> None:
        if self._sealed:
            return super().mark(label)
        now = self._clock()
        self._roll(now)
        self._p_events.append((now, label))
        self._note_sample()

    # -- probes ------------------------------------------------------------
    def retained_samples(self) -> int:
        """Pending raw samples plus the bounded live tee.  Before
        finalize the aggregate structures are empty by construction;
        after it the base accounting (which includes the tee) applies."""
        if self._sealed:
            return super().retained_samples()
        retained = self.pending_samples
        if self.windows is not None:
            retained += self.windows.retained_samples()
        return retained


__all__ = ["RETAIN_TEE_WINDOWS", "STREAM_VERSION", "StreamingTelemetry"]
