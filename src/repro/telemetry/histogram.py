"""Reservoir-sampled latency histograms with percentile summaries."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.sim.rng import seeded_py


class LatencyHistogram:
    """Streaming latency statistics with a bounded-memory sample reservoir.

    Tracks exact count / sum / min / max and keeps up to ``reservoir_size``
    samples (uniform reservoir sampling) for percentile estimation.  For
    runs below the reservoir size the percentiles are exact.

    Recording is the probe layer's innermost loop (runqlat and softirq
    samples arrive once per scheduler event), so the common case — fewer
    samples than the reservoir holds — is a bare ``list.append``; the exact
    count/sum/min/max are computed lazily from the buffer with C-speed
    builtins.  Once the reservoir fills, recording switches to the classic
    per-sample algorithm, consuming the RNG in exactly the same order as a
    sample-at-a-time implementation (bit-identical percentiles).
    """

    __slots__ = (
        "reservoir_size",
        "_seed",
        "_rng",
        "_samples",
        "_sampling",
        "_count",
        "_total",
        "_min",
        "_max",
        "_sorted_cache",
    )

    def __init__(self, reservoir_size: int = 100_000, seed: int = 0):
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.reservoir_size = reservoir_size
        self._seed = seed
        self._rng = seeded_py(seed)
        self._samples: List[float] = []
        # False while the buffer still holds every sample; True once the
        # reservoir is full and per-sample replacement has begun.
        self._sampling = False
        self._count = 0
        self._total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._sorted_cache: Optional[List[float]] = None

    def reset(self) -> None:
        """Forget every sample; the RNG restarts from the seed so a reset
        histogram behaves identically to a freshly constructed one."""
        self._rng = seeded_py(self._seed)
        self._samples.clear()
        self._sampling = False
        self._count = 0
        self._total = 0.0
        self._min = None
        self._max = None
        self._sorted_cache = None

    # -- recording ---------------------------------------------------------
    def record(self, value: float) -> None:
        """Add one latency sample (microseconds)."""
        if not self._sampling:
            samples = self._samples
            samples.append(value)
            self._sorted_cache = None
            if len(samples) >= self.reservoir_size:
                self._seal()
            return
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        self._sorted_cache = None
        slot = self._rng.randrange(self._count)
        if slot < self.reservoir_size:
            self._samples[slot] = value

    def _seal(self) -> None:
        """Reservoir is full: fold the buffer into exact running stats and
        switch to per-sample reservoir replacement."""
        samples = self._samples
        self._count = len(samples)
        self._total = sum(samples)  # left-to-right, same order as += per sample
        self._min = min(samples)
        self._max = max(samples)
        self._sampling = True

    def extend(self, values: Iterable[float]) -> None:
        """Add many samples."""
        record = self.record
        for value in values:
            record(value)

    # -- exact stats -------------------------------------------------------
    @property
    def count(self) -> int:
        """Total samples recorded."""
        return self._count if self._sampling else len(self._samples)

    @property
    def total(self) -> float:
        """Sum of all recorded samples."""
        return self._total if self._sampling else sum(self._samples)

    @property
    def min(self) -> Optional[float]:
        """Smallest sample (None when empty)."""
        if self._sampling:
            return self._min
        return min(self._samples) if self._samples else None

    @property
    def max(self) -> Optional[float]:
        """Largest sample (None when empty)."""
        if self._sampling:
            return self._max
        return max(self._samples) if self._samples else None

    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded samples (0 when empty)."""
        count = self.count
        return self.total / count if count else 0.0

    # -- percentiles -------------------------------------------------------
    def percentile(self, pct: float) -> float:
        """Estimate the ``pct``-th percentile (0..100) from the reservoir."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        if not self._samples:
            return 0.0
        ordered = self._sorted_cache
        if ordered is None:
            ordered = self._sorted_cache = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        # Linear interpolation between closest ranks.
        rank = (pct / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        # low + frac*(high-low) is exact when both ranks hold equal values,
        # keeping percentiles monotone under floating point.
        return ordered[low] + frac * (ordered[high] - ordered[low])

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.percentile(50.0)

    def summary(self, percentiles: Iterable[float] = (50, 90, 95, 99, 99.9)) -> Dict[str, float]:
        """A dict of count / mean / min / max plus requested percentiles."""
        result: Dict[str, float] = {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min or 0.0,
            "max": self.max or 0.0,
        }
        for pct in percentiles:
            key = f"p{pct:g}"
            result[key] = self.percentile(pct)
        return result

    def samples(self) -> List[float]:
        """A copy of the reservoir samples (for violin-style plots)."""
        return list(self._samples)

    @classmethod
    def merged(
        cls, parts: Iterable["LatencyHistogram"], reservoir_size: Optional[int] = None
    ) -> "LatencyHistogram":
        """Combine several histograms into one (per-replica roll-ups).

        Replays each part's reservoir in order, so the merge is
        deterministic; while all parts fit in the result's reservoir the
        combined percentiles are exact.
        """
        parts = list(parts)
        if reservoir_size is None:
            reservoir_size = max(
                [part.reservoir_size for part in parts], default=100_000
            )
        result = cls(reservoir_size)
        for part in parts:
            result.extend(part._samples)
        return result

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if not self.count:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(n={self.count}, mean={self.mean:.2f}us, "
            f"p50={self.median:.2f}us, p99={self.percentile(99):.2f}us)"
        )
