"""Reservoir-sampled latency histograms with percentile summaries."""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional


class LatencyHistogram:
    """Streaming latency statistics with a bounded-memory sample reservoir.

    Tracks exact count / sum / min / max and keeps up to ``reservoir_size``
    samples (uniform reservoir sampling) for percentile estimation.  For
    runs below the reservoir size the percentiles are exact.
    """

    def __init__(self, reservoir_size: int = 100_000, seed: int = 0):
        if reservoir_size <= 0:
            raise ValueError("reservoir_size must be positive")
        self.reservoir_size = reservoir_size
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: List[float] = []
        self._rng = random.Random(seed)
        self._sorted_cache: Optional[List[float]] = None

    def record(self, value: float) -> None:
        """Add one latency sample (microseconds)."""
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self._sorted_cache = None
        if len(self._samples) < self.reservoir_size:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < self.reservoir_size:
                self._samples[slot] = value

    def extend(self, values: Iterable[float]) -> None:
        """Add many samples."""
        for value in values:
            self.record(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of all recorded samples (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        """Estimate the ``pct``-th percentile (0..100) from the reservoir."""
        if not 0.0 <= pct <= 100.0:
            raise ValueError(f"percentile out of range: {pct}")
        if not self._samples:
            return 0.0
        if self._sorted_cache is None:
            self._sorted_cache = sorted(self._samples)
        ordered = self._sorted_cache
        if len(ordered) == 1:
            return ordered[0]
        # Linear interpolation between closest ranks.
        rank = (pct / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        # low + frac*(high-low) is exact when both ranks hold equal values,
        # keeping percentiles monotone under floating point.
        return ordered[low] + frac * (ordered[high] - ordered[low])

    @property
    def median(self) -> float:
        """The 50th percentile."""
        return self.percentile(50.0)

    def summary(self, percentiles: Iterable[float] = (50, 90, 95, 99, 99.9)) -> Dict[str, float]:
        """A dict of count / mean / min / max plus requested percentiles."""
        result: Dict[str, float] = {
            "count": float(self.count),
            "mean": self.mean,
            "min": self.min or 0.0,
            "max": self.max or 0.0,
        }
        for pct in percentiles:
            key = f"p{pct:g}"
            result[key] = self.percentile(pct)
        return result

    def samples(self) -> List[float]:
        """A copy of the reservoir samples (for violin-style plots)."""
        return list(self._samples)

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        if not self.count:
            return "LatencyHistogram(empty)"
        return (
            f"LatencyHistogram(n={self.count}, mean={self.mean:.2f}us, "
            f"p50={self.median:.2f}us, p99={self.percentile(99):.2f}us)"
        )
