"""Per-request distributed tracing.

The paper measures *aggregate* distributions (runqlat, syscounts); a
modern microservice deployment also wants per-request critical paths —
where did THIS query's 4 ms go?  This tracer records Dapper-style spans
as a request crosses the tiers:

``client_rtt``      the whole round trip, recorded by the load generator
``queue_wait``      mid-tier task-queue dwell (dispatch hand-off)
``request_path``    mid-tier arrival → fan-out sent
``leaf:<name>``     each leaf sub-request's service span
``response_path``   final leaf response arrival → reply sent

Sampling keeps overhead bounded: the load generator attaches a trace to
every Nth request; untraced requests pay one ``is None`` check.

Besides application-level spans, a trace accumulates kernel-level
:class:`Segment`\\ s — runqueue waits, softirq service, wire time —
stamped by the scheduler / NIC pipeline whenever a traced message drives
them.  :mod:`repro.telemetry.critpath` joins both streams into an exact
tiling of the request's wall-clock interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass
class Span:
    """One timed segment of a request's life."""

    name: str
    machine: str
    start_us: float
    end_us: Optional[float] = None
    # The RPC (sub-)request this span served, when known.  Lets the
    # attribution engine drop spans from losing hedge/retry paths.
    request_id: Optional[int] = None

    @property
    def duration_us(self) -> float:
        return (self.end_us - self.start_us) if self.end_us is not None else 0.0


@dataclass
class Segment:
    """One kernel-level event interval attributed to a traced request.

    ``category`` is one of :data:`repro.telemetry.critpath.CATEGORIES`;
    ``request_id`` names the (sub-)request whose message drove the event,
    so hedged duplicates can be filtered to the winning path.
    """

    category: str
    machine: str
    start_us: float
    end_us: float
    request_id: Optional[int] = None

    @property
    def duration_us(self) -> float:
        return self.end_us - self.start_us


@dataclass
class Trace:
    """All spans recorded for one sampled request."""

    request_id: int
    started_us: float
    spans: List[Span] = field(default_factory=list)
    finished_us: Optional[float] = None
    # Kernel-event intervals (see Segment above), appended in event order.
    segments: List[Segment] = field(default_factory=list)
    # Sub-request ids whose response was merged into the reply (losing
    # hedge/retry duplicates never get noted here).
    winners: Set[int] = field(default_factory=set)

    def begin(self, name: str, machine: str, now: float) -> Span:
        span = Span(name=name, machine=machine, start_us=now)
        self.spans.append(span)
        return span

    def record(
        self,
        name: str,
        machine: str,
        start_us: float,
        end_us: float,
        request_id: Optional[int] = None,
    ) -> Span:
        span = Span(
            name=name, machine=machine, start_us=start_us, end_us=end_us,
            request_id=request_id,
        )
        self.spans.append(span)
        return span

    def add_segment(
        self,
        category: str,
        machine: str,
        start_us: float,
        end_us: float,
        request_id: Optional[int] = None,
    ) -> None:
        """Stamp one kernel-event interval onto this trace."""
        self.segments.append(
            Segment(
                category=category, machine=machine,
                start_us=start_us, end_us=end_us, request_id=request_id,
            )
        )

    def note_winner(self, request_id: int) -> None:
        """Mark a sub-request's response as merged into the reply."""
        self.winners.add(request_id)

    def end_last(self, name: str, now: float) -> Optional[Span]:
        """Close the most recent still-open span called ``name``."""
        for span in reversed(self.spans):
            if span.name == name and span.end_us is None:
                span.end_us = now
                return span
        return None

    @property
    def total_us(self) -> float:
        if self.finished_us is None:
            return 0.0
        return self.finished_us - self.started_us

    def breakdown(self) -> Dict[str, float]:
        """Total duration per span name."""
        out: Dict[str, float] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0.0) + span.duration_us
        return out

    def critical_path_gap_us(self) -> float:
        """Round-trip time not covered by any recorded span — the
        network + scheduling residue between tiers."""
        return max(0.0, self.total_us - sum(s.duration_us for s in self.spans))

    def render(self) -> str:
        """A text timeline, one line per span, indented by start order."""
        if not self.spans:
            return f"trace #{self.request_id}: (no spans)"
        origin = self.started_us
        lines = [f"trace #{self.request_id}: {self.total_us:.0f}us total"]
        for span in sorted(self.spans, key=lambda s: s.start_us):
            offset = span.start_us - origin
            lines.append(
                f"  +{offset:8.1f}us  {span.name:<16} {span.duration_us:8.1f}us"
                f"  [{span.machine}]"
            )
        return "\n".join(lines)


class Tracer:
    """Creates sampled traces and collects completed ones."""

    def __init__(self, sample_every: int = 100, max_traces: int = 1_000):
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        self.sample_every = sample_every
        self.max_traces = max_traces
        self._counter = 0
        self.finished: List[Trace] = []

    def maybe_trace(self, request_id: int, now: float) -> Optional[Trace]:
        """A new trace for every ``sample_every``-th call, else None."""
        self._counter += 1
        if self._counter % self.sample_every != 0:
            return None
        return Trace(request_id=request_id, started_us=now)

    def finish(self, trace: Trace, now: float) -> None:
        """Mark a trace complete and keep it (bounded)."""
        trace.finished_us = now
        if len(self.finished) < self.max_traces:
            self.finished.append(trace)

    def breakdown_summary(self) -> Dict[str, float]:
        """Mean µs per span name across all finished traces."""
        sums: Dict[str, float] = {}
        counts: Dict[str, int] = {}
        for trace in self.finished:
            for name, duration in trace.breakdown().items():
                sums[name] = sums.get(name, 0.0) + duration
                counts[name] = counts.get(name, 0) + 1
        return {name: sums[name] / counts[name] for name in sums}
