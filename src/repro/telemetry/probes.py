"""The :class:`Telemetry` hub every simulated subsystem records into."""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Tuple

from repro.telemetry.histogram import LatencyHistogram

# Interrupt categories reported by the paper's Figs. 15-18, in their order.
IRQ_KINDS: Tuple[str, ...] = ("hardirq", "net_tx", "net_rx", "block", "sched", "rcu")


class Telemetry:
    """Aggregates every probe for one simulation run.

    Counters and histograms are keyed by *machine name* so that experiments
    can isolate the mid-tier (the paper's object of study) from leaves.
    A ``window_start`` can be set after warm-up so that only steady-state
    activity is counted.
    """

    def __init__(self, reservoir_size: int = 100_000):
        self.reservoir_size = reservoir_size
        self.window_start: float = 0.0
        self._clock = lambda: 0.0  # replaced via attach_clock
        self._sim = None  # fast clock: set when attach_clock receives a Simulation
        self.syscalls: Dict[str, Counter] = {}
        self.runqlat: Dict[str, LatencyHistogram] = {}
        self.irq_latency: Dict[Tuple[str, str], LatencyHistogram] = {}
        self.context_switches: Counter = Counter()
        self.hitm: Counter = Counter()
        # Cross-socket (UPI-hop) subset of the HITM events above.
        self.hitm_remote: Counter = Counter()
        self.retransmissions: int = 0
        self.futex_contended_wakes: Counter = Counter()
        # Microseconds stamped onto sampled traces per (machine, category)
        # by the critical-path instrumentation (repro.telemetry.critpath).
        # Recorded at the same sites as the trace segments so aggregate
        # cross-checks can compare against an exact-by-construction total.
        self.attributed: Dict[Tuple[str, str], float] = {}
        self.attributed_counts: Counter = Counter()
        # Free-form extension points used by RPC / loadgen layers.
        self.histograms: Dict[str, LatencyHistogram] = {}
        self.counters: Counter = Counter()
        self.events: List[Tuple[float, str]] = []
        # Opt-in fixed-width metric windows (repro.telemetry.windows),
        # created by enable_windows(). None keeps the probe hot paths
        # unchanged — the off path is a single identity test.
        self.windows = None

    # -- wiring ----------------------------------------------------------
    def attach_clock(self, clock, sim=None) -> None:
        """Attach a zero-arg callable returning current simulation time.

        Passing the :class:`~repro.sim.core.Simulation` as ``sim`` lets the
        hot probes read the clock attribute directly instead of through a
        callable — probes fire once per scheduler event, so the indirection
        is measurable."""
        self._clock = clock
        self._sim = sim

    def enable_windows(self, width_us: float, prefixes=()) -> None:
        """Tee matching probe samples into fixed-width metric windows.

        Unlike the whole-run aggregates, the windows ignore
        ``window_start`` (controllers must see warm-up load) and survive
        :meth:`open_window`.  Runqueue-wait samples appear under the
        series name ``runqlat:<machine>``.
        """
        from repro.telemetry.windows import WindowedMetrics

        self.windows = WindowedMetrics(width_us, prefixes)

    def finalized(self) -> "Telemetry":
        """The telemetry to read whole-run summaries from.

        The buffered hub aggregates in place, so this is ``self`` and
        constructs nothing — run helpers call it unconditionally, and
        only the streaming subclass does work here (fold the spill
        stream back into these structures).
        """
        return self

    def close(self) -> None:
        """Release run-scoped resources (no-op for the buffered hub)."""

    def retained_samples(self) -> int:
        """Raw samples currently resident: histogram reservoirs, events,
        and the windows tee.  This is the telemetry-internal high-water
        probe the bounded-memory regression test reads — deliberately
        not RSS, which a one-core runner cannot measure cleanly."""
        retained = sum(
            len(hist._samples)
            for group in (self.runqlat, self.irq_latency, self.histograms)
            for hist in group.values()
        )
        retained += len(self.events)
        if self.windows is not None:
            retained += self.windows.retained_samples()
        return retained

    def in_window(self) -> bool:
        """True when current time is inside the measurement window."""
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        return now >= self.window_start

    def open_window(self, start: float) -> None:
        """Discard everything recorded before ``start`` (warm-up trim)."""
        self.window_start = start
        self.syscalls.clear()
        self.runqlat.clear()
        self.irq_latency.clear()
        self.context_switches.clear()
        self.hitm.clear()
        self.hitm_remote.clear()
        self.retransmissions = 0
        self.futex_contended_wakes.clear()
        self.attributed.clear()
        self.attributed_counts.clear()
        self.histograms.clear()
        self.counters.clear()
        self.events.clear()

    # -- kernel probes ----------------------------------------------------
    def count_syscall(self, machine: str, name: str) -> None:
        """eBPF ``syscount`` equivalent."""
        sim = self._sim
        if (sim._now if sim is not None else self._clock()) < self.window_start:
            return
        per_machine = self.syscalls.get(machine)
        if per_machine is None:
            per_machine = Counter()
            self.syscalls[machine] = per_machine
        per_machine[name] += 1

    def record_runqlat(self, machine: str, latency_us: float) -> None:
        """eBPF ``runqlat`` equivalent: Active→Exe scheduler wait."""
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if self.windows is not None:
            self.windows.observe(f"runqlat:{machine}", now, latency_us)
        if now < self.window_start:
            return
        hist = self.runqlat.get(machine)
        if hist is None:
            hist = LatencyHistogram(self.reservoir_size)
            self.runqlat[machine] = hist
        hist.record(latency_us)

    def record_irq(self, machine: str, kind: str, latency_us: float) -> None:
        """eBPF ``hardirqs``/``softirqs`` equivalent."""
        if kind not in IRQ_KINDS:
            raise ValueError(f"unknown irq kind: {kind}")
        sim = self._sim
        if (sim._now if sim is not None else self._clock()) < self.window_start:
            return
        key = (machine, kind)
        hist = self.irq_latency.get(key)
        if hist is None:
            hist = LatencyHistogram(self.reservoir_size)
            self.irq_latency[key] = hist
        hist.record(latency_us)

    def count_context_switch(self, machine: str) -> None:
        """``perf`` context-switch count equivalent."""
        if self.in_window():
            self.context_switches[machine] += 1

    def count_hitm(self, machine: str, n: int = 1, remote: bool = False) -> None:
        """Intel HITM PEBS equivalent: cross-core contended cacheline hits.

        ``remote`` marks cross-socket transfers (PEBS distinguishes local
        vs remote HITM); they count toward the total *and* the remote
        counter."""
        sim = self._sim
        if (sim._now if sim is not None else self._clock()) >= self.window_start:
            self.hitm[machine] += n
            if remote:
                self.hitm_remote[machine] += n

    def count_retransmission(self) -> None:
        """eBPF ``tcpretrans`` equivalent."""
        if self.in_window():
            self.retransmissions += 1

    def count_contended_wake(self, machine: str) -> None:
        """Futex wakes that found waiters (lock handoffs)."""
        if self.in_window():
            self.futex_contended_wakes[machine] += 1

    def record_attributed(self, machine: str, category: str, us: float) -> None:
        """Count microseconds stamped onto a traced request's segments."""
        sim = self._sim
        if (sim._now if sim is not None else self._clock()) < self.window_start:
            return
        key = (machine, category)
        self.attributed[key] = self.attributed.get(key, 0.0) + us
        self.attributed_counts[key] += 1

    # -- generic extension probes ----------------------------------------
    def hist(self, name: str) -> LatencyHistogram:
        """Named histogram, created on first use (e.g. e2e latency)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = LatencyHistogram(self.reservoir_size)
            self.histograms[name] = hist
        return hist

    def record(self, name: str, value: float) -> None:
        """Record into the named histogram if inside the window."""
        sim = self._sim
        now = sim._now if sim is not None else self._clock()
        if self.windows is not None:
            self.windows.observe(name, now, value)
        if now >= self.window_start:
            hist = self.histograms.get(name)
            if hist is None:
                hist = LatencyHistogram(self.reservoir_size)
                self.histograms[name] = hist
            hist.record(value)

    def incr(self, name: str, n: int = 1) -> None:
        """Increment a named counter if inside the window."""
        if self.in_window():
            self.counters[name] += n

    def mark(self, label: str) -> None:
        """Append a timestamped marker (for debugging traces)."""
        self.events.append((self._clock(), label))

    # -- summaries ---------------------------------------------------------
    def syscall_counts(self, machine: str) -> Counter:
        """All syscall counts for a machine (empty Counter if none)."""
        return self.syscalls.get(machine, Counter())

    def irq_hist(self, machine: str, kind: str) -> LatencyHistogram:
        """IRQ latency histogram (empty if never recorded)."""
        return self.irq_latency.get((machine, kind), LatencyHistogram(1))

    def runqlat_hist(self, machine: str) -> LatencyHistogram:
        """Runqueue-wait histogram (empty if never recorded)."""
        return self.runqlat.get(machine, LatencyHistogram(1))

    def attributed_total(self, machine: str, category: str) -> float:
        """Microseconds stamped onto traces for one machine + category."""
        return self.attributed.get((machine, category), 0.0)

    # -- replica roll-ups (scale-out topologies) ---------------------------
    def merged_runqlat(self, machines: List[str]) -> LatencyHistogram:
        """One runqlat histogram combining every named machine's samples."""
        parts = [self.runqlat[name] for name in machines if name in self.runqlat]
        return LatencyHistogram.merged(parts)

    def merged_syscalls(self, machines: List[str]) -> Counter:
        """Syscall counts summed across the named machines."""
        merged: Counter = Counter()
        for name in machines:
            merged.update(self.syscalls.get(name, Counter()))
        return merged

    # -- batching / caching roll-ups (repro.rpc.batching, repro.midcache) --
    def cache_summary(self, machines: List[str]) -> Dict[str, float]:
        """Hit/miss/single-flight counters summed across mid-tier replicas."""
        hits = sum(self.counters.get(f"midcache_hits:{m}", 0) for m in machines)
        misses = sum(self.counters.get(f"midcache_misses:{m}", 0) for m in machines)
        lookups = hits + misses
        return {
            "hits": float(hits),
            "misses": float(misses),
            "lookups": float(lookups),
            "hit_rate": hits / lookups if lookups else 0.0,
            "coalesced": float(sum(
                self.counters.get(f"midcache_coalesced:{m}", 0) for m in machines
            )),
            "invalidations": float(sum(
                self.counters.get(f"midcache_invalidations:{m}", 0) for m in machines
            )),
        }

    def batch_summary(self, machines: List[str]) -> Dict[str, float]:
        """Coalescer counters + occupancy summed across mid-tier replicas."""
        batches = sum(self.counters.get(f"batches_sent:{m}", 0) for m in machines)
        subs = sum(
            self.counters.get(f"batched_subrequests:{m}", 0) for m in machines
        )
        occupancy = LatencyHistogram.merged([
            self.histograms[f"batch_occupancy:{m}"]
            for m in machines
            if f"batch_occupancy:{m}" in self.histograms
        ])
        return {
            "batches_sent": float(batches),
            "subrequests_batched": float(subs),
            "mean_occupancy": subs / batches if batches else 0.0,
            "occupancy_p99": occupancy.percentile(99) if occupancy.count else 0.0,
        }

    def per_query_syscall_delta(
        self, machines: List[str], completed: int, baseline: Dict[str, float],
    ) -> Dict[str, float]:
        """Per-query syscall rates minus a baseline run's rates.

        ``baseline`` maps syscall name → invocations per query in the
        reference (e.g. batching-off) run; negative deltas are the
        amortization win the coalescer is supposed to buy.
        """
        denom = max(completed, 1)
        merged = self.merged_syscalls(machines)
        names = set(merged) | set(baseline)
        return {
            name: merged.get(name, 0) / denom - baseline.get(name, 0.0)
            for name in sorted(names)
        }

    def replica_breakdown(self, machines: List[str]) -> Dict[str, Dict[str, float]]:
        """Per-replica runqlat percentiles and syscall/context-switch totals
        — the scale-out analogue of the paper's per-machine eBPF tables."""
        breakdown: Dict[str, Dict[str, float]] = {}
        for name in machines:
            runqlat = self.runqlat.get(name)
            breakdown[name] = {
                "runqlat_p50_us": runqlat.percentile(50) if runqlat else 0.0,
                "runqlat_p99_us": runqlat.percentile(99) if runqlat else 0.0,
                "runqlat_samples": float(runqlat.count) if runqlat else 0.0,
                "syscalls": float(sum(self.syscalls.get(name, Counter()).values())),
                "context_switches": float(self.context_switches.get(name, 0)),
            }
        return breakdown
