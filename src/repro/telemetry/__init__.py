"""In-simulator observability, mirroring the paper's measurement tooling.

The paper instruments its testbed with eBPF tools (``syscount``,
``runqlat``, ``hardirqs``, ``softirqs``, ``tcpretrans``), ``perf`` context-
switch counts, and Intel HITM PEBS events.  Each probe here measures the
same quantity at the equivalent place in the simulated kernel:

=================  =====================================================
eBPF / perf tool    Probe in this package
=================  =====================================================
``syscount``        :meth:`Telemetry.count_syscall`
``runqlat``         :meth:`Telemetry.record_runqlat` (Active→Exe)
``hardirqs``        :meth:`Telemetry.record_irq` with kind ``hardirq``
``softirqs``        :meth:`Telemetry.record_irq` with net_tx/net_rx/
                    sched/rcu/block kinds
``tcpretrans``      :meth:`Telemetry.count_retransmission`
``perf`` (cs)       :meth:`Telemetry.count_context_switch`
HITM PEBS           :meth:`Telemetry.count_hitm`
=================  =====================================================

Two aggregation modes, selected by :class:`TelemetryConfig`: the
buffered hub aggregates in memory (the historical default), while
:class:`StreamingTelemetry` spills windowed deltas to a JSONL stream
and folds them back post-mortem (:func:`fold_stream`) — bit-identical
aggregates at O(windows retained) resident memory.
"""

from repro.telemetry.aggregate import StreamError, fold_stream
from repro.telemetry.config import TELEMETRY_MODES, TelemetryConfig
from repro.telemetry.histogram import LatencyHistogram
from repro.telemetry.probes import IRQ_KINDS, Telemetry
from repro.telemetry.stream import StreamingTelemetry
from repro.telemetry.windows import MetricWindow, WindowedMetrics

__all__ = [
    "IRQ_KINDS",
    "LatencyHistogram",
    "MetricWindow",
    "StreamError",
    "StreamingTelemetry",
    "TELEMETRY_MODES",
    "Telemetry",
    "TelemetryConfig",
    "WindowedMetrics",
    "fold_stream",
]
