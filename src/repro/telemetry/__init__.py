"""In-simulator observability, mirroring the paper's measurement tooling.

The paper instruments its testbed with eBPF tools (``syscount``,
``runqlat``, ``hardirqs``, ``softirqs``, ``tcpretrans``), ``perf`` context-
switch counts, and Intel HITM PEBS events.  Each probe here measures the
same quantity at the equivalent place in the simulated kernel:

=================  =====================================================
eBPF / perf tool    Probe in this package
=================  =====================================================
``syscount``        :meth:`Telemetry.count_syscall`
``runqlat``         :meth:`Telemetry.record_runqlat` (Active→Exe)
``hardirqs``        :meth:`Telemetry.record_irq` with kind ``hardirq``
``softirqs``        :meth:`Telemetry.record_irq` with net_tx/net_rx/
                    sched/rcu/block kinds
``tcpretrans``      :meth:`Telemetry.count_retransmission`
``perf`` (cs)       :meth:`Telemetry.count_context_switch`
HITM PEBS           :meth:`Telemetry.count_hitm`
=================  =====================================================
"""

from repro.telemetry.histogram import LatencyHistogram
from repro.telemetry.probes import IRQ_KINDS, Telemetry
from repro.telemetry.windows import MetricWindow, WindowedMetrics

__all__ = [
    "IRQ_KINDS",
    "LatencyHistogram",
    "MetricWindow",
    "Telemetry",
    "WindowedMetrics",
]
