"""Fixed-width metric windows for the control plane.

The :class:`~repro.telemetry.probes.Telemetry` hub aggregates whole-run
summaries; a controller instead needs *recent* behavior.  This module
adds an opt-in tee: when :meth:`Telemetry.enable_windows` is called, each
matching probe sample is also binned into a fixed-width
:class:`MetricWindow` keyed by ``int(now // width_us)``.  The tee sits in
front of the warm-up trim (``window_start``), so the controller sees
load from t=0, and :meth:`Telemetry.open_window` deliberately does *not*
clear windows — the control loop's view must survive the measurement
trim.

Determinism: binning is pure arithmetic on the event-engine clock.  When
windowing is disabled (the default) no object is constructed and no
probe path changes — a single ``is None`` test.

The concatenation property (proved in ``tests/test_control_properties``)
is that count/sum/min/max and percentile over all windows of a series,
concatenated, exactly equal the same aggregates over the whole run —
each sample lands in exactly one window, and the percentile math is the
same closest-rank interpolation as :class:`LatencyHistogram`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


def rank_percentile(ordered: Sequence[float], pct: float) -> float:
    """Closest-rank linear interpolation, identical to
    :meth:`LatencyHistogram.percentile` over an already-sorted sequence."""
    if not 0.0 <= pct <= 100.0:
        raise ValueError(f"percentile out of range: {pct}")
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    frac = rank - low
    return ordered[low] + frac * (ordered[high] - ordered[low])


@dataclass
class MetricWindow:
    """Exact aggregates + samples for one series over one time bin."""

    index: int
    start_us: float
    end_us: float
    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None
    samples: List[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        self.samples.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, pct: float) -> float:
        return rank_percentile(sorted(self.samples), pct)


class WindowedMetrics:
    """Per-series fixed-width windows, filled by the telemetry tee.

    ``prefixes`` restricts which probe names are binned (empty = all):
    windowing every histogram in a large sweep would double telemetry
    memory for series the controller never reads.
    """

    def __init__(
        self,
        width_us: float,
        prefixes: Sequence[str] = (),
        start_us: float = 0.0,
        retain_windows: Optional[int] = None,
    ):
        if width_us <= 0:
            raise ValueError(f"window width must be positive, got {width_us}")
        if retain_windows is not None and retain_windows < 1:
            raise ValueError(
                f"retain_windows must be >= 1, got {retain_windows}"
            )
        self.width_us = float(width_us)
        self.prefixes: Tuple[str, ...] = tuple(prefixes)
        self.start_us = float(start_us)
        # None keeps every window (the buffered default); an integer keeps
        # only the most recent N per series — readers that look back at
        # most (N-1) windows (the controller reads one window_us) see
        # identical values, but memory stays O(retained), not O(run).
        self.retain_windows = retain_windows
        self._series: Dict[str, Dict[int, MetricWindow]] = {}

    def wants(self, name: str) -> bool:
        return not self.prefixes or name.startswith(self.prefixes)

    def observe(self, name: str, now_us: float, value: float) -> None:
        if not self.wants(name):
            return
        series = self._series.get(name)
        if series is None:
            series = {}
            self._series[name] = series
        idx = int((now_us - self.start_us) // self.width_us)
        window = series.get(idx)
        if window is None:
            # Both edges come from the same grid expression, so window k's
            # end_us is bit-equal to window k+1's start_us.  Computing the
            # end as ``start + width`` instead can exceed the next grid
            # point by one ulp for widths that are not exactly
            # representable, making the window overlap both sides of a
            # window-aligned cut in windows_between (a double count).
            window = MetricWindow(
                index=idx,
                start_us=self.start_us + idx * self.width_us,
                end_us=self.start_us + (idx + 1) * self.width_us,
            )
            series[idx] = window
            if self.retain_windows is not None:
                horizon = idx - self.retain_windows
                for old in [k for k in series if k <= horizon]:
                    del series[old]
        window.observe(value)

    # -- reads -------------------------------------------------------------
    def retained_samples(self) -> int:
        """Raw samples currently held across every series and window."""
        return sum(
            len(window.samples)
            for series in self._series.values()
            for window in series.values()
        )

    def names(self) -> List[str]:
        return sorted(self._series)

    def windows(self, name: str) -> List[MetricWindow]:
        """All windows of a series, in time order."""
        series = self._series.get(name, {})
        return [series[idx] for idx in sorted(series)]

    def windows_between(self, name: str, t0_us: float, t1_us: float) -> List[MetricWindow]:
        """Windows overlapping [t0_us, t1_us).  Selection is at window
        granularity: a window belongs to the range when it intersects it."""
        return [
            w for w in self.windows(name)
            if w.end_us > t0_us and w.start_us < t1_us
        ]

    def values_between(
        self, names: Sequence[str], t0_us: float, t1_us: float
    ) -> List[float]:
        """Concatenated samples of several series over a span (window
        granularity), in (series, time) order — deterministic."""
        out: List[float] = []
        for name in names:
            for w in self.windows_between(name, t0_us, t1_us):
                out.extend(w.samples)
        return out
