"""Typed telemetry-mode configuration for the config tree.

:class:`TelemetryConfig` selects how a run's probes are aggregated:

* ``mode="buffered"`` (the default) — the historical in-memory
  :class:`~repro.telemetry.probes.Telemetry` hub.  Nothing new is
  constructed; every committed golden is byte-identical.
* ``mode="streaming"`` — a
  :class:`~repro.telemetry.stream.StreamingTelemetry` that spills
  windowed probe deltas to an append-only JSONL stream during the run
  and evicts the raw samples after each flush, so resident telemetry
  memory is O(windows retained), not O(requests).  The post-mortem
  aggregator (:mod:`repro.telemetry.aggregate`) folds the stream back
  into exactly the buffered structures — bit-identical at the same
  seed (proved in ``tests/test_stream_equivalence.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

#: The two aggregation modes a run can use.
TELEMETRY_MODES = ("buffered", "streaming")


@dataclass(frozen=True)
class TelemetryConfig:
    """How one run's telemetry is aggregated (see the module docstring)."""

    mode: str = "buffered"
    #: Streaming flush window: pending deltas are written to the stream
    #: and evicted each time the simulation clock crosses a multiple of
    #: this width.  Ignored in buffered mode.
    window_us: float = 10_000.0
    #: Where the JSONL stream is written.  None (the default) spills to
    #: a temporary file that is deleted after the post-mortem fold; a
    #: path keeps the stream on disk for ``repro.telemetry.aggregate``.
    spill_path: Optional[str] = None

    def __post_init__(self):
        if self.mode not in TELEMETRY_MODES:
            raise ValueError(
                f"telemetry mode must be one of {TELEMETRY_MODES}: "
                f"{self.mode!r}"
            )
        if not self.window_us > 0:
            raise ValueError(
                f"telemetry window_us must be positive: {self.window_us}"
            )

    @property
    def streaming(self) -> bool:
        return self.mode == "streaming"


__all__ = ["TELEMETRY_MODES", "TelemetryConfig"]
