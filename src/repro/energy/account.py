"""Deterministic per-core energy accounting over the scheduler timeline.

The scheduler already maintains an exact per-core state timeline — a
core is busy from the dispatch that clears ``idle_since`` until the
``_switch_away`` that sets it again.  :class:`MachineEnergy` listens at
exactly those two transition points (see the guarded hooks in
:mod:`repro.kernel.scheduler`) and accumulates *durations*:

* ``active_us`` — total core-microseconds spent busy;
* ``idle_us[state]`` — idle core-microseconds split stepwise across the
  C-state descent: an idle span's first microseconds up to the C1E
  threshold are C1 time, the stretch up to the C6 threshold is C1E
  time, and the remainder is C6 time (thresholds come from the
  machine's :class:`~repro.kernel.config.OsCosts.cstates` table, so a
  costs override with deep states disabled is priced consistently);
* ``wake_counts[state]`` — wakeup transitions, keyed by the state the
  kernel charged the exit latency for.

Multiplication by watts is deferred to report time
(:mod:`repro.energy.report`): durations are exact sums of simulator
timestamps, so the account itself is bit-deterministic and
power-model-independent.

Accounting is strictly passive: it never touches the event calendar,
never draws randomness, and tees its observations into the telemetry
hub through the ordinary ``record``/``incr`` probes — which is what
makes the buffered and streaming telemetry views of energy provably
identical (the streaming fold replays those same calls in order).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from repro.energy.config import EnergyConfig
from repro.kernel.config import OsCosts


def idle_portions(
    thresholds: Tuple[Tuple[str, float], ...], duration_us: float
) -> List[Tuple[str, float]]:
    """Split one idle span stepwise across the C-state descent.

    ``thresholds`` is ``((state, min_idle_us), ...)`` sorted ascending
    (the kernel's cstates table); a span of ``duration_us`` spends
    ``[min_idle_i, min_idle_i+1)`` in state ``i``.  Returns only the
    non-empty portions, in descent order; their sum telescopes back to
    ``duration_us`` exactly for integer-µs inputs.
    """
    portions: List[Tuple[str, float]] = []
    for i, (state, lo) in enumerate(thresholds):
        hi = thresholds[i + 1][1] if i + 1 < len(thresholds) else math.inf
        if duration_us <= lo:
            break
        portions.append((state, min(duration_us, hi) - lo))
    return portions


class MachineEnergy:
    """The per-core energy account of one machine.

    Cores start idle at the same origin the scheduler uses
    (``Core.idle_since = 0.0``), so the first wakeup's span matches the
    kernel's own ``idle_time`` byte for byte.
    """

    __slots__ = (
        "name",
        "n_cores",
        "active_us",
        "idle_us",
        "wake_counts",
        "_thresholds",
        "_busy_from",
        "_idle_from",
        "_telemetry",
    )

    def __init__(self, name: str, n_cores: int, costs: OsCosts, telemetry=None):
        self.name = name
        self.n_cores = n_cores
        self._thresholds: Tuple[Tuple[str, float], ...] = tuple(
            (point.name, point.min_idle_us) for point in costs.cstates
        )
        self.active_us = 0.0
        self.idle_us: Dict[str, float] = {
            state: 0.0 for state, _lo in self._thresholds
        }
        self.wake_counts: Dict[str, int] = {
            state: 0 for state, _lo in self._thresholds
        }
        self._busy_from: List[float] = [0.0] * n_cores
        self._idle_from: List[Optional[float]] = [0.0] * n_cores
        self._telemetry = telemetry

    # -- scheduler hooks ---------------------------------------------------
    def on_wake(
        self, core_index: int, idle_start: float, now: float, state: str
    ) -> None:
        """Close the idle span ``[idle_start, now)``; the core is busy.

        ``state`` is the C-state the kernel charged the exit latency
        for — the wake transition is counted against it.
        """
        for portion_state, portion in idle_portions(
            self._thresholds, now - idle_start
        ):
            self.idle_us[portion_state] += portion
            if self._telemetry is not None:
                self._telemetry.record(
                    f"energy_idle:{self.name}:{portion_state}", portion
                )
        self.wake_counts[state] += 1
        if self._telemetry is not None:
            self._telemetry.incr(f"energy_wake:{self.name}:{state}")
        self._busy_from[core_index] = now
        self._idle_from[core_index] = None

    def on_sleep(self, core_index: int, now: float) -> None:
        """Close the busy span ending at ``now``; the core is idle."""
        if self._idle_from[core_index] is not None:
            return  # already idle (paired with the scheduler's own guard)
        span = now - self._busy_from[core_index]
        self.active_us += span
        if self._telemetry is not None:
            self._telemetry.record(f"energy_active:{self.name}", span)
        self._idle_from[core_index] = now

    # -- snapshots ---------------------------------------------------------
    def snapshot(self, now: float) -> Dict[str, object]:
        """Cumulative durations and wake counts as of ``now``.

        Open spans are integrated up to ``now`` non-destructively, so a
        window's energy is the plain difference of two snapshots — and
        snapshot deltas are additive over adjacent windows (the
        telescoping the property suite checks).
        """
        active = self.active_us
        idle = dict(self.idle_us)
        for core in range(self.n_cores):
            idle_from = self._idle_from[core]
            if idle_from is None:
                active += now - self._busy_from[core]
            else:
                for state, portion in idle_portions(
                    self._thresholds, now - idle_from
                ):
                    idle[state] += portion
        return {
            "active_us": active,
            "idle_us": idle,
            "wakes": dict(self.wake_counts),
        }


class EnergyAccount:
    """All machines' energy accounts for one cluster."""

    def __init__(self, config: EnergyConfig, costs: OsCosts, telemetry=None):
        if not config.enabled:
            raise ValueError("EnergyAccount requires an enabled EnergyConfig")
        # Fail fast if the cost model has a C-state the power model
        # cannot price, instead of a KeyError mid-report.
        for point in costs.cstates:
            config.idle_watts(point.name)
            config.wake_joules_uj(point.name)
        self.config = config
        self.costs = costs
        self.machines: Dict[str, MachineEnergy] = {}
        self._telemetry = telemetry

    def add_machine(self, name: str, n_cores: int) -> MachineEnergy:
        """Register one machine; returns the account its scheduler hooks."""
        if name in self.machines:
            raise ValueError(f"machine already registered: {name}")
        machine = MachineEnergy(
            name, n_cores, self.costs, telemetry=self._telemetry
        )
        self.machines[name] = machine
        return machine

    def snapshot(self, now: float) -> Dict[str, Dict[str, object]]:
        """Per-machine cumulative snapshot (see MachineEnergy.snapshot)."""
        return {
            name: machine.snapshot(now)
            for name, machine in sorted(self.machines.items())
        }


__all__ = ["EnergyAccount", "MachineEnergy", "idle_portions"]
