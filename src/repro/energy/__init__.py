"""Deterministic per-core energy accounting (config, account, report).

The account integrates each core's busy/idle timeline exactly as the
scheduler walks it; the report prices those durations with a frozen
power model.  Disabled by default — with :class:`EnergyConfig.enabled`
false, nothing here is constructed and the simulator's committed
goldens stay byte-identical.
"""

from repro.energy.account import EnergyAccount, MachineEnergy, idle_portions
from repro.energy.config import EnergyConfig
from repro.energy.report import (
    COMPUTE_CATEGORIES,
    EnergyReport,
    WAKEUP_CATEGORIES,
    attribution_energy,
)

__all__ = [
    "COMPUTE_CATEGORIES",
    "EnergyAccount",
    "EnergyConfig",
    "EnergyReport",
    "MachineEnergy",
    "WAKEUP_CATEGORIES",
    "attribution_energy",
    "idle_portions",
]
