"""Frozen power-model configuration for the per-core energy account.

The simulator's kernel already *pays* for deep sleep in latency
(:mod:`repro.kernel.config` C-state exit latencies, DVFS stretch); this
config prices the same timeline in joules.  Power numbers are per core,
in watts — and since the simulation clock is in microseconds, one watt
is exactly one microjoule per microsecond, so every energy integral
below is a plain ``duration_us × watts`` product with no unit juggling.

Defaults are shaped after Skylake-server per-core package-power splits
(a few watts active per core, C1 keeping caches/clocks warm at ~1.5 W,
C1E gating clocks at ~0.8 W, C6 power-gating the core at ~0.1 W) and
per-transition wakeup costs growing with state depth.  They are a cost
*model*, calibrated for shape rather than a specific SKU — what the
experiments reproduce is the tradeoff structure, not a vendor datasheet.

Like :class:`~repro.kernel.config.OsCosts.syscall_us`, the per-state
tables are tuples of ``(name, value)`` pairs so the config stays
hashable and frozen; lists coming back from JSON round-trips are
normalized in ``__post_init__``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class EnergyConfig:
    """Per-core power model: active watts, per-C-state idle watts, and
    per-transition wakeup microjoules.

    Disabled by default: nothing is constructed, no scheduler hook runs,
    and every committed golden stays byte-identical.  Enabling it adds
    accounting only — it never changes a timestamp, an RNG draw, or a
    scheduling decision, so metrics with it on or off are identical.
    """

    enabled: bool = False
    #: Power while a core executes (compute, syscalls, switch costs).
    active_w: float = 3.5
    #: Idle power by C-state, per core.  The account integrates a core's
    #: idle span *stepwise* through these states: the first 20 µs at C1
    #: power, then C1E until 600 µs, then C6 — matching the thresholds
    #: the kernel's exit-latency table uses (DEFAULT_CSTATES).
    idle_w: Tuple[Tuple[str, float], ...] = (
        ("C1", 1.5),
        ("C1E", 0.8),
        ("C6", 0.1),
    )
    #: Energy burned per wakeup transition, by the state woken *from*
    #: (voltage ramp, cache warm-up, IPI handling).
    wake_uj: Tuple[Tuple[str, float], ...] = (
        ("C1", 2.0),
        ("C1E", 8.0),
        ("C6", 40.0),
    )

    def __post_init__(self) -> None:
        # JSON round-trips hand back lists of lists; normalize to the
        # hashable tuple-of-pairs form so from_dict(to_dict(x)) == x.
        for table in ("idle_w", "wake_uj"):
            pairs = tuple(
                (str(state), float(value)) for state, value in getattr(self, table)
            )
            object.__setattr__(self, table, pairs)
        if self.active_w <= 0:
            raise ValueError(f"active_w must be positive: {self.active_w}")
        for table in ("idle_w", "wake_uj"):
            for state, value in getattr(self, table):
                if value < 0:
                    raise ValueError(
                        f"{table}[{state!r}] must be >= 0: {value}"
                    )

    def idle_watts(self, state: str) -> float:
        """Idle power for C-state ``state``; KeyError when unpriced."""
        for known, watts in self.idle_w:
            if known == state:
                return watts
        raise KeyError(f"no idle power for C-state: {state}")

    def wake_joules_uj(self, state: str) -> float:
        """Wakeup energy (µJ) for a transition out of ``state``."""
        for known, uj in self.wake_uj:
            if known == state:
                return uj
        raise KeyError(f"no wakeup energy for C-state: {state}")


__all__ = ["EnergyConfig"]
