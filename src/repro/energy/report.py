"""Energy reports: pricing account snapshots and critical paths in joules.

Durations accumulate in :mod:`repro.energy.account`; this module applies
the :class:`~repro.energy.config.EnergyConfig` power model at read time.
The simulation clock is microseconds, so one watt is one microjoule per
microsecond and every product below is ``duration_us × watts`` (or
``wakes × wake_uj``) with no unit conversion.

:meth:`EnergyReport.from_window` subtracts two account snapshots — the
run helpers take one when the measured window opens and one when it
closes — so a report covers exactly the window the latency metrics
cover, warm-up excluded, drain excluded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.energy.config import EnergyConfig

#: Critical-path categories priced as request compute (the serving core
#: is executing this request's work).
COMPUTE_CATEGORIES = ("leaf_compute", "app_compute")

#: Critical-path categories priced as wakeup overhead: active_exe is the
#: runnable→running wait, which includes the C-state exit latency and
#: dispatch cost the woken core burns at active power before the
#: request's thread executes.
WAKEUP_CATEGORIES = ("active_exe",)


@dataclass
class EnergyReport:
    """One measured window's energy, cluster-wide and per machine."""

    duration_us: float
    completed: int
    #: Durations (µs of core-time) inside the window.
    active_us: float
    idle_us: Dict[str, float]
    wakes: Dict[str, int]
    #: The same window priced in microjoules.
    active_uj: float
    idle_uj: Dict[str, float]
    wakeup_uj: Dict[str, float]
    total_uj: float
    #: machine -> {active_uj, idle_uj, wakeup_uj, total_uj}.
    by_machine: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @classmethod
    def from_window(
        cls,
        config: EnergyConfig,
        start: Mapping[str, Mapping[str, object]],
        end: Mapping[str, Mapping[str, object]],
        completed: int,
        duration_us: float,
    ) -> "EnergyReport":
        """Price the delta between two account snapshots."""
        active_us = 0.0
        idle_us: Dict[str, float] = {}
        wakes: Dict[str, int] = {}
        by_machine: Dict[str, Dict[str, float]] = {}
        for name in sorted(end):
            first, last = start[name], end[name]
            m_active_us = last["active_us"] - first["active_us"]
            m_active_uj = m_active_us * config.active_w
            m_idle_uj = 0.0
            m_wake_uj = 0.0
            active_us += m_active_us
            for state in last["idle_us"]:
                span = last["idle_us"][state] - first["idle_us"][state]
                idle_us[state] = idle_us.get(state, 0.0) + span
                m_idle_uj += span * config.idle_watts(state)
            for state in last["wakes"]:
                n = last["wakes"][state] - first["wakes"][state]
                wakes[state] = wakes.get(state, 0) + n
                m_wake_uj += n * config.wake_joules_uj(state)
            by_machine[name] = {
                "active_uj": m_active_uj,
                "idle_uj": m_idle_uj,
                "wakeup_uj": m_wake_uj,
                "total_uj": m_active_uj + m_idle_uj + m_wake_uj,
            }
        active_uj = active_us * config.active_w
        idle_uj = {
            state: span * config.idle_watts(state)
            for state, span in sorted(idle_us.items())
        }
        wakeup_uj = {
            state: n * config.wake_joules_uj(state)
            for state, n in sorted(wakes.items())
        }
        return cls(
            duration_us=duration_us,
            completed=completed,
            active_us=active_us,
            idle_us=dict(sorted(idle_us.items())),
            wakes=dict(sorted(wakes.items())),
            active_uj=active_uj,
            idle_uj=idle_uj,
            wakeup_uj=wakeup_uj,
            total_uj=active_uj + sum(idle_uj.values()) + sum(wakeup_uj.values()),
            by_machine=by_machine,
        )

    # -- derived views -----------------------------------------------------
    @property
    def idle_uj_total(self) -> float:
        return sum(self.idle_uj.values())

    @property
    def wakeup_uj_total(self) -> float:
        return sum(self.wakeup_uj.values())

    @property
    def uj_per_query(self) -> float:
        """Microjoules per completed query (0 when nothing completed)."""
        return self.total_uj / self.completed if self.completed else 0.0

    @property
    def avg_power_w(self) -> float:
        """Mean cluster power over the window (µJ/µs == W)."""
        return self.total_uj / self.duration_us if self.duration_us else 0.0

    @property
    def wake_share(self) -> float:
        """Fraction of window energy spent on wakeup transitions."""
        return self.wakeup_uj_total / self.total_uj if self.total_uj else 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (artifacts, equivalence comparisons)."""
        return {
            "duration_us": self.duration_us,
            "completed": self.completed,
            "active_us": self.active_us,
            "idle_us": dict(self.idle_us),
            "wakes": dict(self.wakes),
            "active_uj": self.active_uj,
            "idle_uj": dict(self.idle_uj),
            "wakeup_uj": dict(self.wakeup_uj),
            "idle_uj_total": self.idle_uj_total,
            "wakeup_uj_total": self.wakeup_uj_total,
            "total_uj": self.total_uj,
            "uj_per_query": self.uj_per_query,
            "avg_power_w": self.avg_power_w,
            "wake_share": self.wake_share,
            "by_machine": {
                name: dict(values) for name, values in self.by_machine.items()
            },
        }


def attribution_energy(attr, config: EnergyConfig) -> Dict[str, float]:
    """Price one request's critical path (energy-per-request).

    ``attr`` is a :class:`~repro.telemetry.critpath.Attribution`.  The
    serving core burns active power through the request's compute
    categories; the active_exe wait — which contains the C-state exit
    latency and dispatch cost of every wakeup on the path — is the
    wakeup-attributed share.  Network/IRQ segments are not charged: the
    cores carrying them are accounted by the cluster-wide report, not
    the per-request one.
    """
    compute_us = sum(attr.categories.get(c, 0.0) for c in COMPUTE_CATEGORIES)
    wakeup_us = sum(attr.categories.get(c, 0.0) for c in WAKEUP_CATEGORIES)
    compute_uj = compute_us * config.active_w
    wakeup_uj = wakeup_us * config.active_w
    total_uj = compute_uj + wakeup_uj
    return {
        "compute_uj": compute_uj,
        "wakeup_uj": wakeup_uj,
        "total_uj": total_uj,
        "wake_share": wakeup_uj / total_uj if total_uj else 0.0,
    }


__all__ = [
    "COMPUTE_CATEGORIES",
    "EnergyReport",
    "WAKEUP_CATEGORIES",
    "attribution_energy",
]
